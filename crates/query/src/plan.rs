//! Query planning: choosing access paths and projection strategies.
//!
//! The planner implements the paper's §3.1 claim that "query processing
//! … will know about field replication and exploit it whenever possible
//! to avoid functional joins": each projection path is answered by, in
//! order of preference,
//!
//! 1. an exact replicated path (in-place preferred — zero extra I/O —
//!    then separate, which joins against the small clustered `S'`),
//! 2. the longest *collapse* path (§3.3.3), which shortcuts the prefix
//!    and leaves fewer functional joins,
//! 3. plain functional joins (the no-replication baseline).

use crate::error::{QueryError, Result};
use fieldrep_catalog::{Catalog, GroupId, IndexDef, IndexKind, PathId, SetId, Strategy};
use fieldrep_model::PathExpr;
use fieldrep_obs::names as obs_names;
use std::fmt;

/// How one projection path will be evaluated.
#[derive(Clone, Debug, PartialEq)]
pub enum ProjPlan {
    /// A base field of the queried set.
    BaseField {
        /// Field index.
        field: usize,
    },
    /// Read the hidden in-place replicated values of `path`.
    InPlaceReplica {
        /// The replication path.
        path: PathId,
        /// Positions within the path's value list, one per projected
        /// terminal field.
        positions: Vec<usize>,
    },
    /// Join to the group's `S'` file through the hidden replica refs.
    SeparateReplica {
        /// The replica group.
        group: GroupId,
        /// Positions within the group's field list.
        positions: Vec<usize>,
    },
    /// Jump through a collapse path's replicated reference, then perform
    /// the remaining functional joins.
    CollapseThenJoin {
        /// The collapse path whose replicated value is a reference.
        path: PathId,
        /// Remaining ref-field hops after the jump.
        remaining_hops: Vec<usize>,
        /// Terminal field indexes to project.
        terminal_fields: Vec<usize>,
    },
    /// Plain functional joins along every hop.
    FunctionalJoin {
        /// Ref-field hops.
        hops: Vec<usize>,
        /// Terminal field indexes to project.
        terminal_fields: Vec<usize>,
    },
}

impl ProjPlan {
    /// Number of result columns this projection contributes.
    pub fn width(&self) -> usize {
        match self {
            ProjPlan::BaseField { .. } => 1,
            ProjPlan::InPlaceReplica { positions, .. } => positions.len(),
            ProjPlan::SeparateReplica { positions, .. } => positions.len(),
            ProjPlan::CollapseThenJoin {
                terminal_fields, ..
            } => terminal_fields.len(),
            ProjPlan::FunctionalJoin {
                terminal_fields, ..
            } => terminal_fields.len(),
        }
    }

    /// Short operator label for profiles and span notes.
    pub fn label(&self) -> String {
        match self {
            ProjPlan::BaseField { field } => format!("base-field(#{field})"),
            ProjPlan::InPlaceReplica { path, .. } => format!("inplace-replica({path})"),
            ProjPlan::SeparateReplica { group, .. } => {
                format!("separate-replica(group #{})", group.0)
            }
            ProjPlan::CollapseThenJoin {
                path,
                remaining_hops,
                ..
            } => format!("collapse({path})+{}join", remaining_hops.len()),
            ProjPlan::FunctionalJoin { hops, .. } => format!("functional-join({})", hops.len()),
        }
    }
}

/// How the set's members will be located.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessPlan {
    /// Scan every page of the set file.
    FullScan,
    /// Range scan of a B⁺-tree on a base field.
    IndexRange {
        /// The index used.
        index: fieldrep_storage::FileId,
        /// Clustered or unclustered (affects I/O shape, not results).
        kind: IndexKind,
        /// Filtered base field.
        field: usize,
    },
    /// Range scan of a B⁺-tree built on replicated path values (§3.3.4).
    PathIndexRange {
        /// The index used.
        index: fieldrep_storage::FileId,
        /// The replication path whose values are indexed.
        path: PathId,
    },
}

impl AccessPlan {
    /// Short operator label for profiles and span notes.
    pub fn label(&self) -> String {
        match self {
            AccessPlan::FullScan => format!("{}:full-scan", obs_names::OP_ACCESS),
            AccessPlan::IndexRange { kind, field, .. } => {
                format!("{}:index-range({kind:?} #{field})", obs_names::OP_ACCESS)
            }
            AccessPlan::PathIndexRange { path, .. } => {
                format!("{}:path-index-range({path})", obs_names::OP_ACCESS)
            }
        }
    }
}

/// A complete plan for a read or update query.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The queried set.
    pub set: SetId,
    /// Access path.
    pub access: AccessPlan,
    /// One entry per projection (empty for update queries).
    pub projections: Vec<ProjPlan>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.access {
            AccessPlan::FullScan => writeln!(f, "access: full scan")?,
            AccessPlan::IndexRange { kind, field, .. } => {
                writeln!(f, "access: {kind:?} index range on field #{field}")?;
            }
            AccessPlan::PathIndexRange { path, .. } => {
                writeln!(f, "access: path-index range on replicated path {path}")?;
            }
        }
        for (i, p) in self.projections.iter().enumerate() {
            match p {
                ProjPlan::BaseField { field } => writeln!(f, "proj[{i}]: base field #{field}")?,
                ProjPlan::InPlaceReplica { path, .. } => {
                    writeln!(f, "proj[{i}]: in-place replica of {path} (no join)")?;
                }
                ProjPlan::SeparateReplica { group, .. } => writeln!(
                    f,
                    "proj[{i}]: separate replica via S' of group #{}",
                    group.0
                )?,
                ProjPlan::CollapseThenJoin {
                    path,
                    remaining_hops,
                    ..
                } => writeln!(
                    f,
                    "proj[{i}]: collapse via {path}, then {} functional join(s)",
                    remaining_hops.len()
                )?,
                ProjPlan::FunctionalJoin { hops, .. } => {
                    writeln!(f, "proj[{i}]: {} functional join(s)", hops.len())?;
                }
            }
        }
        Ok(())
    }
}

/// Plan a single projection path (dotted, relative to the set).
pub fn plan_projection(cat: &Catalog, set: SetId, dotted: &str) -> Result<ProjPlan> {
    let set_name = &cat.set(set).name;
    let expr = PathExpr::parse(&format!("{set_name}.{dotted}"))
        .map_err(|e| QueryError::BadQuery(e.to_string()))?;
    let resolved = cat.resolve_path(&expr)?;

    let Some(&first_terminal) = resolved.terminal_fields.first() else {
        return Err(QueryError::BadQuery(format!(
            "projection path {dotted:?} resolves to no terminal fields"
        )));
    };

    if resolved.hops.is_empty() {
        return Ok(ProjPlan::BaseField {
            field: first_terminal,
        });
    }

    // 1. Exact replicas covering every projected terminal field.
    let exact: Vec<_> = cat
        .paths_from(set)
        .filter(|p| {
            p.hops == resolved.hops
                && resolved
                    .terminal_fields
                    .iter()
                    .all(|f| p.terminal_fields.contains(f))
        })
        .collect();
    if let Some(p) = exact
        .iter()
        .find(|p| p.strategy == Strategy::InPlace)
        .or_else(|| exact.first())
    {
        match p.strategy {
            Strategy::InPlace => {
                let positions = positions_of(&resolved.terminal_fields, &p.terminal_fields)
                    .ok_or_else(|| {
                        QueryError::BadQuery(format!(
                            "replicated path {} does not carry every field of {dotted:?}",
                            p.id
                        ))
                    })?;
                return Ok(ProjPlan::InPlaceReplica {
                    path: p.id,
                    positions,
                });
            }
            Strategy::Separate => {
                let Some(gid) = p.group else {
                    return Err(QueryError::BadQuery(format!(
                        "separate-strategy path {} has no replica group in the catalog",
                        p.id
                    )));
                };
                let group = cat.group(gid);
                let positions =
                    positions_of(&resolved.terminal_fields, &group.fields).ok_or_else(|| {
                        QueryError::BadQuery(format!(
                            "replica group #{} does not carry every field of {dotted:?}",
                            group.id.0
                        ))
                    })?;
                return Ok(ProjPlan::SeparateReplica {
                    group: group.id,
                    positions,
                });
            }
        }
    }

    // 2. Longest collapse prefix.
    if let Some((p, k)) = cat.collapse_for(set, &resolved.hops) {
        return Ok(ProjPlan::CollapseThenJoin {
            path: p.id,
            remaining_hops: resolved.hops[k + 1..].to_vec(),
            terminal_fields: resolved.terminal_fields,
        });
    }

    // 3. Baseline.
    Ok(ProjPlan::FunctionalJoin {
        hops: resolved.hops,
        terminal_fields: resolved.terminal_fields,
    })
}

/// Position of each `wanted` field within `carried`, or `None` if any is
/// missing (a catalog/resolution mismatch the caller reports as a bad
/// query rather than panicking on).
fn positions_of(wanted: &[usize], carried: &[usize]) -> Option<Vec<usize>> {
    wanted
        .iter()
        .map(|f| carried.iter().position(|g| g == f))
        .collect()
}

/// Plan the access path for a filter on `dotted` (a base field or a
/// replicated path with an index).
pub fn plan_access(cat: &Catalog, set: SetId, filter_path: Option<&str>) -> Result<AccessPlan> {
    let Some(dotted) = filter_path else {
        return Ok(AccessPlan::FullScan);
    };
    let set_name = &cat.set(set).name;
    let expr = PathExpr::parse(&format!("{set_name}.{dotted}"))
        .map_err(|e| QueryError::BadQuery(e.to_string()))?;
    let resolved = cat.resolve_path(&expr)?;
    let Some(&first_terminal) = resolved.terminal_fields.first() else {
        return Err(QueryError::BadQuery(format!(
            "filter path {dotted:?} resolves to no terminal fields"
        )));
    };

    if resolved.hops.is_empty() {
        let field = first_terminal;
        if let Some(IndexDef { file, kind, .. }) = cat.index_on_field(set, field) {
            return Ok(AccessPlan::IndexRange {
                index: *file,
                kind: *kind,
                field,
            });
        }
        return Ok(AccessPlan::FullScan);
    }

    // Path filter: use a path index if one exists over an in-place
    // replicated path (§3.3.4); otherwise a full scan evaluates the path
    // per object.
    if let Some(p) = cat.replica_for(set, &resolved.hops, first_terminal) {
        if let Some(idx) = cat.index_on_path(p.id) {
            return Ok(AccessPlan::PathIndexRange {
                index: idx.file,
                path: p.id,
            });
        }
    }
    Ok(AccessPlan::FullScan)
}
