//! Query-processor tests: planner choices and end-to-end results for
//! every projection strategy, on the Figure-1 employee database.

use fieldrep_catalog::{IndexKind, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{AccessPlan, Assign, Filter, ProjPlan, ReadQuery, UpdateQuery};
use fieldrep_storage::Oid;

fn sval(s: &str) -> Value {
    Value::Str(s.into())
}

/// 2 orgs, 4 depts, 40 employees with salaries 50_000 + 100·i.
fn make_db() -> (Database, Vec<Oid>, Vec<Oid>, Vec<Oid>) {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let orgs: Vec<Oid> = (0..2)
        .map(|i| {
            db.insert(
                "Org",
                vec![sval(&format!("org{i}")), Value::Int(1000 * i as i64)],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..4)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    sval(&format!("dept{i}")),
                    Value::Int(10 * i as i64),
                    Value::Ref(orgs[i % 2]),
                ],
            )
            .unwrap()
        })
        .collect();
    let emps: Vec<Oid> = (0..40)
        .map(|i| {
            db.insert(
                "Emp1",
                vec![
                    sval(&format!("emp{i}")),
                    Value::Int(50_000 + 100 * i as i64),
                    Value::Ref(depts[i % 4]),
                ],
            )
            .unwrap()
        })
        .collect();
    (db, orgs, depts, emps)
}

#[test]
fn full_scan_no_filter() {
    let (mut db, _, _, _) = make_db();
    let res = ReadQuery::on("Emp1")
        .project(["name", "salary"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows.len(), 40);
    assert!(matches!(res.plan.access, AccessPlan::FullScan));
    assert_eq!(res.rows[0][0], Some(sval("emp0")));
    assert_eq!(res.rows[39][1], Some(Value::Int(53_900)));
}

#[test]
fn index_range_filter() {
    let (mut db, _, _, _) = make_db();
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    let q = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(50_000),
            hi: Value::Int(50_500),
        })
        .project(["name", "salary"]);
    let res = q.run(&mut db).unwrap();
    assert!(matches!(res.plan.access, AccessPlan::IndexRange { .. }));
    assert_eq!(res.rows.len(), 6); // salaries 50000..50500 step 100
                                   // Index scan returns rows in key order.
    let salaries: Vec<i64> = res
        .rows
        .iter()
        .map(|r| match r[1] {
            Some(Value::Int(s)) => s,
            _ => panic!(),
        })
        .collect();
    assert_eq!(
        salaries,
        vec![50_000, 50_100, 50_200, 50_300, 50_400, 50_500]
    );
}

#[test]
fn filter_without_index_falls_back_to_scan() {
    let (mut db, _, _, _) = make_db();
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "name".into(),
            value: sval("emp7"),
        })
        .project(["salary"])
        .run(&mut db)
        .unwrap();
    assert!(matches!(res.plan.access, AccessPlan::FullScan));
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Some(Value::Int(50_700)));
}

#[test]
fn functional_join_baseline() {
    let (mut db, _, _, _) = make_db();
    let res = ReadQuery::on("Emp1")
        .project(["name", "dept.name", "dept.org.name"])
        .run(&mut db)
        .unwrap();
    assert!(matches!(
        res.plan.projections[1],
        ProjPlan::FunctionalJoin { .. }
    ));
    assert!(matches!(
        res.plan.projections[2],
        ProjPlan::FunctionalJoin { .. }
    ));
    assert_eq!(res.rows[0][1], Some(sval("dept0")));
    assert_eq!(res.rows[0][2], Some(sval("org0")));
    assert_eq!(res.rows[1][1], Some(sval("dept1")));
    assert_eq!(res.rows[1][2], Some(sval("org1")));
}

#[test]
fn planner_prefers_inplace_replica() {
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    db.replicate("Emp1.dept.budget", Strategy::InPlace).unwrap();
    let plan = ReadQuery::on("Emp1")
        .project(["dept.name", "dept.budget"])
        .plan(&db)
        .unwrap();
    assert!(matches!(
        plan.projections[0],
        ProjPlan::SeparateReplica { .. }
    ));
    assert!(matches!(
        plan.projections[1],
        ProjPlan::InPlaceReplica { .. }
    ));
}

#[test]
fn inplace_replica_results_match_joins() {
    let (mut db, _, _, _) = make_db();
    let baseline = ReadQuery::on("Emp1")
        .project(["name", "dept.name"])
        .run(&mut db)
        .unwrap();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let fast = ReadQuery::on("Emp1")
        .project(["name", "dept.name"])
        .run(&mut db)
        .unwrap();
    assert!(matches!(
        fast.plan.projections[1],
        ProjPlan::InPlaceReplica { .. }
    ));
    assert_eq!(baseline.rows, fast.rows);
}

#[test]
fn separate_replica_results_match_joins() {
    let (mut db, _, _, _) = make_db();
    let baseline = ReadQuery::on("Emp1")
        .project(["name", "dept.org.name"])
        .run(&mut db)
        .unwrap();
    db.replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    let fast = ReadQuery::on("Emp1")
        .project(["name", "dept.org.name"])
        .run(&mut db)
        .unwrap();
    assert!(matches!(
        fast.plan.projections[1],
        ProjPlan::SeparateReplica { .. }
    ));
    assert_eq!(baseline.rows, fast.rows);
}

#[test]
fn collapse_path_shortcut() {
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.org", Strategy::InPlace).unwrap();
    let q = ReadQuery::on("Emp1").project(["dept.org.budget"]);
    let plan = q.plan(&db).unwrap();
    match &plan.projections[0] {
        ProjPlan::CollapseThenJoin { remaining_hops, .. } => {
            assert!(remaining_hops.is_empty(), "org.budget is one jump away");
        }
        other => panic!("expected collapse, got {other:?}"),
    }
    let res = q.run(&mut db).unwrap();
    assert_eq!(res.rows[0][0], Some(Value::Int(0)));
    assert_eq!(res.rows[1][0], Some(Value::Int(1000)));
}

#[test]
fn update_query_propagates_through_replicas() {
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.create_index("Dept.budget", IndexKind::Unclustered)
        .unwrap();

    // Rename all depts with budget ≥ 20 (depts 2 and 3).
    let res = UpdateQuery::on("Dept")
        .filter(Filter::Range {
            path: "budget".into(),
            lo: Value::Int(20),
            hi: Value::Int(999),
        })
        .assign("name", Assign::Set(sval("renamed")))
        .run(&mut db)
        .unwrap();
    assert_eq!(res.updated, 2);

    let read = ReadQuery::on("Emp1")
        .project(["dept.name"])
        .run(&mut db)
        .unwrap();
    // Employees of depts 2 and 3 (i % 4 ∈ {2,3}) see the rename.
    for (i, row) in read.rows.iter().enumerate() {
        let want = if i % 4 >= 2 {
            "renamed"
        } else {
            &format!("dept{}", i % 4)
        };
        assert_eq!(row[0], Some(sval(want)), "row {i}");
    }
}

#[test]
fn update_query_increment() {
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    let res = UpdateQuery::on("Dept")
        .assign("budget", Assign::Increment(5))
        .run(&mut db)
        .unwrap();
    assert_eq!(res.updated, 4);
    let read = ReadQuery::on("Emp1")
        .project(["dept.budget"])
        .run(&mut db)
        .unwrap();
    assert_eq!(read.rows[0][0], Some(Value::Int(5)));
    assert_eq!(read.rows[1][0], Some(Value::Int(15)));
}

#[test]
fn path_index_access_plan() {
    // §3.3.4: associative lookup on Emp1.dept.org.name through the index
    // on replicated values.
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    db.create_index("Emp1.dept.org.name", IndexKind::Unclustered)
        .unwrap();
    let q = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "dept.org.name".into(),
            value: sval("org0"),
        })
        .project(["name"]);
    let plan = q.plan(&db).unwrap();
    assert!(matches!(plan.access, AccessPlan::PathIndexRange { .. }));
    let res = q.run(&mut db).unwrap();
    // org0 owns depts 0 and 2 → employees with i % 4 ∈ {0, 2} → 20 rows.
    assert_eq!(res.rows.len(), 20);

    // Without the index the same filter still works via scan + deref.
    let q2 = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "dept.name".into(),
            value: sval("dept1"),
        })
        .project(["name"]);
    let plan2 = q2.plan(&db).unwrap();
    assert!(matches!(plan2.access, AccessPlan::FullScan));
    assert_eq!(q2.run(&mut db).unwrap().rows.len(), 10);
}

#[test]
fn null_refs_produce_none_columns() {
    let (mut db, _, _, _) = make_db();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let lost = db
        .insert(
            "Emp1",
            vec![sval("lost"), Value::Int(1), Value::Ref(Oid::NULL)],
        )
        .unwrap();
    let res = ReadQuery::on("Emp1")
        .project(["dept.name", "dept.org.name"])
        .run(&mut db)
        .unwrap();
    let last = res.rows.last().unwrap();
    assert_eq!(last[0], None);
    assert_eq!(last[1], None);
    let _ = lost;
}

#[test]
fn spooling_writes_output_file() {
    let (mut db, _, _, _) = make_db();
    let res = ReadQuery::on("Emp1")
        .project(["name", "salary"])
        .spool(100)
        .run(&mut db)
        .unwrap();
    let f = res.output_file.expect("spooled");
    // 40 rows at 100 bytes → ⌈40/33⌉ = 2 pages (O_t = 33).
    assert_eq!(db.sm().page_count(f).unwrap(), 2);
    db.sm().drop_file(f).unwrap();
}

#[test]
fn projection_of_whole_referenced_object() {
    let (mut db, _, _, _) = make_db();
    let res = ReadQuery::on("Emp1")
        .project(["dept.all"])
        .run(&mut db)
        .unwrap();
    // DEPT has three non-pad fields → three columns.
    assert_eq!(res.rows[0].len(), 3);
    assert_eq!(res.rows[0][0], Some(sval("dept0")));
    assert_eq!(res.rows[0][1], Some(Value::Int(0)));
    assert!(matches!(res.rows[0][2], Some(Value::Ref(_))));
}

#[test]
fn update_with_eq_filter_on_unindexed_field() {
    let (mut db, _, _, _) = make_db();
    let res = UpdateQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "name".into(),
            value: sval("emp3"),
        })
        .assign("salary", Assign::Set(Value::Int(1)))
        .run(&mut db)
        .unwrap();
    assert_eq!(res.updated, 1);
}

#[test]
fn bad_queries_error_cleanly() {
    let (mut db, _, _, _) = make_db();
    assert!(ReadQuery::on("Nope").project(["x"]).run(&mut db).is_err());
    assert!(ReadQuery::on("Emp1")
        .project(["bogus"])
        .run(&mut db)
        .is_err());
    assert!(UpdateQuery::on("Emp1")
        .assign("name", Assign::Increment(1))
        .run(&mut db)
        .is_err());
}
