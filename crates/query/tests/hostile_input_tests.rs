//! Hostile-input regressions for plan building: queries over unknown
//! sets, fields, or malformed dotted paths must come back as
//! `Err(QueryError)`, never a panic. These pin the conversion of the
//! planner's historical `unwrap`/`expect` sites into diagnostics.

use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{Filter, ReadQuery, UpdateQuery};

fn small_db() -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("DEPT", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let d = db.insert("Dept", vec![Value::Str("D".into())]).unwrap();
    db.insert(
        "Emp1",
        vec![Value::Str("e".into()), Value::Int(1), Value::Ref(d)],
    )
    .unwrap();
    db
}

#[test]
fn unknown_set_is_an_error() {
    let mut db = small_db();
    assert!(ReadQuery::on("Ghost")
        .project(["name"])
        .run(&mut db)
        .is_err());
    assert!(UpdateQuery::on("Ghost").run(&mut db).is_err());
}

#[test]
fn unknown_projection_paths_are_errors() {
    let mut db = small_db();
    for proj in [
        "ghost",
        "dept.ghost",
        "ghost.name",
        "name.name",  // terminal field used as a hop
        "dept..name", // empty path component
        ".name",      // leading dot
        "dept.name.", // trailing dot
        "",           // empty projection
        "dept.🦀",    // non-identifier bytes
    ] {
        let r = ReadQuery::on("Emp1").project([proj]).run(&mut db);
        assert!(r.is_err(), "expected error for projection {proj:?}");
    }
}

#[test]
fn unknown_filter_paths_are_errors() {
    let mut db = small_db();
    for path in ["ghost", "dept.ghost", "dept..name", ""] {
        let r = ReadQuery::on("Emp1")
            .project(["name"])
            .filter(Filter::Eq {
                path: path.into(),
                value: Value::Int(1),
            })
            .run(&mut db);
        assert!(r.is_err(), "expected error for filter path {path:?}");
    }
}

#[test]
fn hostile_plans_still_leave_the_db_usable() {
    let mut db = small_db();
    let _ = ReadQuery::on("Emp1").project(["ghost"]).run(&mut db);
    let _ = ReadQuery::on("Ghost").project(["name"]).run(&mut db);
    // A good query after the failed ones still works.
    let res = ReadQuery::on("Emp1")
        .project(["name", "dept.name"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][1], Some(Value::Str("D".into())));
}
