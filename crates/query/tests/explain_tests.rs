//! EXPLAIN / EXPLAIN ANALYZE integration tests on a 3-level path
//! (`Emp1.dept.org.budget`) under all three replication strategies:
//! predictions must be present, measured per-operator I/O must telescope
//! to the query total, and the conformance gauges must reach the JSONL
//! exporter.

use fieldrep_catalog::{IndexKind, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_obs::{export, registry};
use fieldrep_query::{
    explain_analyze_read, explain_analyze_update, explain_read, render, Assign, Filter, ReadQuery,
    UpdateQuery,
};

/// 4 orgs ← 20 depts ← 400 employees, salaries dense in `0..400`, with
/// an unclustered index on the selection field.
fn make_db(strategy: Option<Strategy>) -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let orgs: Vec<_> = (0..4)
        .map(|i| {
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(1000 * i as i64)],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..20)
        .map(|i| {
            db.insert(
                "Dept",
                vec![Value::Str(format!("dept{i}")), Value::Ref(orgs[i % 4])],
            )
            .unwrap()
        })
        .collect();
    for i in 0..400 {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp{i}")),
                Value::Int(i as i64),
                Value::Ref(depts[i % 20]),
            ],
        )
        .unwrap();
    }
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    if let Some(s) = strategy {
        db.replicate("Emp1.dept.org.budget", s).unwrap();
    }
    db.flush_all().unwrap();
    db.reset_profile();
    db
}

fn read_query() -> ReadQuery {
    ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(100),
            hi: Value::Int(139),
        })
        .project(["name", "dept.org.budget"])
}

const STRATEGIES: [Option<Strategy>; 3] = [None, Some(Strategy::InPlace), Some(Strategy::Separate)];

#[test]
fn explain_predicts_without_executing() {
    for strategy in STRATEGIES {
        let mut db = make_db(strategy);
        let e = explain_read(&mut db, &read_query()).unwrap();
        assert!(e.measured_total.is_none());
        assert!(e.result_rows.is_none());
        assert!(e.predicted_total > 0.0, "{strategy:?}");
        assert!(e.rows.iter().all(|r| r.measured.is_none()));
        let text = render(&e);
        assert!(text.contains("predicted"), "{text}");
        assert!(!text.contains("measured"), "{text}");
        // Plain EXPLAIN samples path statistics but must not write any
        // query output (no spool file, no dirty pages).
        assert_eq!(db.io_profile().disk.writes, 0, "{strategy:?} wrote pages");
    }
}

#[test]
fn explain_analyze_three_level_path_telescopes_under_every_strategy() {
    for strategy in STRATEGIES {
        let mut db = make_db(strategy);
        let (e, res) = explain_analyze_read(&mut db, &read_query()).unwrap();
        assert_eq!(res.rows.len(), 40, "{strategy:?}");
        assert_eq!(e.result_rows, Some(40));

        // Every operator row is measured, and the per-operator pages sum
        // exactly to the report's total — which is the raw pool total
        // for the run (the executor's telescoping invariant).
        let sum: u64 = e.rows.iter().map(|r| r.measured.unwrap()).sum();
        assert_eq!(Some(sum), e.measured_total, "{strategy:?}");
        assert_eq!(
            sum,
            res.profile.total_io.disk_total(),
            "{strategy:?}: explain total must be the profile's pool total"
        );
        assert!(e.measured_total.unwrap() > 0, "{strategy:?}");

        // The access path and the 3-level projection got predictions.
        let access = e.rows.iter().find(|r| r.op.starts_with("access")).unwrap();
        assert!(access.predicted > 0.0, "{strategy:?}");
        assert!(
            e.rows.iter().any(|r| r.op.starts_with("proj[1]")),
            "{strategy:?}: {:?}",
            e.rows.iter().map(|r| &r.op).collect::<Vec<_>>()
        );

        let text = render(&e);
        for needle in [
            "operator",
            "predicted",
            "measured",
            "drift",
            "total",
            "rows: 40",
        ] {
            assert!(
                text.contains(needle),
                "{strategy:?} missing {needle}:\n{text}"
            );
        }
        if let Some(f) = res.output_file {
            db.sm().drop_file(f).unwrap();
        }
    }
}

#[test]
fn explain_analyze_update_carves_out_propagation() {
    let mut db = make_db(Some(Strategy::InPlace));
    let q = UpdateQuery::on("Org")
        .filter(Filter::Range {
            path: "budget".into(),
            lo: Value::Int(0),
            hi: Value::Int(1000),
        })
        .assign("budget", Assign::Increment(7));
    let (e, res) = explain_analyze_update(&mut db, &q).unwrap();
    assert_eq!(res.updated, 2);
    let prop = e
        .rows
        .iter()
        .find(|r| r.op == "core.propagate")
        .expect("propagation operator present");
    assert!(prop.measured.is_some());
    let sum: u64 = e.rows.iter().map(|r| r.measured.unwrap()).sum();
    assert_eq!(Some(sum), e.measured_total);
}

#[test]
fn drift_gauges_reach_the_jsonl_exporter() {
    let mut db = make_db(Some(Strategy::Separate));
    let (_, res) = explain_analyze_read(&mut db, &read_query()).unwrap();
    if let Some(f) = res.output_file {
        db.sm().drop_file(f).unwrap();
    }
    let lines = export::snapshot_jsonl(&registry().snapshot());
    assert!(
        lines.iter().any(|l| l.contains("costmodel.drift.total")),
        "missing total drift gauge"
    );
    assert!(
        lines.iter().any(|l| l.contains("costmodel.drift.access")),
        "missing per-operator drift gauge"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("costmodel.conformance.queries")),
        "missing conformance counter"
    );
}
