//! Property test: for ANY random database population and ANY filter, a
//! query answered through replicated values must return exactly the rows
//! the functional-join baseline returns. This is the §3.1 guarantee —
//! "replicated values … are guaranteed to be up-to-date" — observed at
//! the query level.

use fieldrep_catalog::{IndexKind, Strategy as RepStrategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{Filter, ReadQuery};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Population {
    n_orgs: usize,
    n_depts: usize,
    emps: Vec<(i64, usize)>, // (salary, dept pick; pick==n_depts → NULL)
    dept_orgs: Vec<usize>,
    renames: Vec<(usize, u8)>,      // dept rename after replication
    retargets: Vec<(usize, usize)>, // emp -> dept re-target after replication
    filter_lo: i64,
    filter_hi: i64,
}

fn population() -> impl Strategy<Value = Population> {
    (
        1..4usize,
        1..8usize,
        proptest::collection::vec((0..1000i64, 0..9usize), 1..50),
        proptest::collection::vec(0..4usize, 8),
        proptest::collection::vec((0..8usize, any::<u8>()), 0..6),
        proptest::collection::vec((0..50usize, 0..8usize), 0..8),
        0..1000i64,
        0..1000i64,
    )
        .prop_map(
            |(n_orgs, n_depts, emps, dept_orgs, renames, retargets, a, b)| Population {
                n_orgs,
                n_depts,
                emps,
                dept_orgs,
                renames,
                retargets,
                filter_lo: a.min(b),
                filter_hi: a.max(b),
            },
        )
}

fn build(pop: &Population, strategy: Option<RepStrategy>) -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("ORG", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let orgs: Vec<_> = (0..pop.n_orgs)
        .map(|i| db.insert("Org", vec![Value::Str(format!("o{i}"))]).unwrap())
        .collect();
    let depts: Vec<_> = (0..pop.n_depts)
        .map(|i| {
            let o = orgs[pop.dept_orgs[i % pop.dept_orgs.len()] % pop.n_orgs];
            db.insert("Dept", vec![Value::Str(format!("d{i}")), Value::Ref(o)])
                .unwrap()
        })
        .collect();
    let emps: Vec<_> = pop
        .emps
        .iter()
        .map(|(salary, pick)| {
            let d = if *pick >= pop.n_depts {
                fieldrep_storage::Oid::NULL
            } else {
                depts[*pick]
            };
            db.insert("Emp1", vec![Value::Int(*salary), Value::Ref(d)])
                .unwrap()
        })
        .collect();
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    if let Some(s) = strategy {
        db.replicate("Emp1.dept.name", s).unwrap();
        db.replicate("Emp1.dept.org.name", s).unwrap();
    }
    // Post-replication churn so the answers exercise propagation.
    for (i, n) in &pop.renames {
        let d = depts[i % pop.n_depts];
        db.update(d, &[("name", Value::Str(format!("r{n}")))])
            .unwrap();
    }
    for (e, d) in &pop.retargets {
        if *e < emps.len() {
            let d = depts[d % pop.n_depts];
            db.update(emps[*e], &[("dept", Value::Ref(d))]).unwrap();
        }
    }
    db
}

fn run_query(db: &mut Database, lo: i64, hi: i64) -> Vec<Vec<Option<Value>>> {
    ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .project(["salary", "dept.name", "dept.org.name"])
        .run(db)
        .unwrap()
        .rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replicated_answers_equal_join_answers(pop in population()) {
        let mut baseline = build(&pop, None);
        let mut inplace = build(&pop, Some(RepStrategy::InPlace));
        let mut separate = build(&pop, Some(RepStrategy::Separate));

        let want = run_query(&mut baseline, pop.filter_lo, pop.filter_hi);
        let got_ip = run_query(&mut inplace, pop.filter_lo, pop.filter_hi);
        let got_sep = run_query(&mut separate, pop.filter_lo, pop.filter_hi);

        prop_assert_eq!(&want, &got_ip, "in-place answers diverge");
        prop_assert_eq!(&want, &got_sep, "separate answers diverge");
    }
}
