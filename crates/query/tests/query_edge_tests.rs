//! Query-layer edge cases: output spooling contents, plan rendering,
//! empty results, filter corner cases, and update assignment variants.

use fieldrep_catalog::{IndexKind, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{AccessPlan, Assign, Filter, ReadQuery, UpdateQuery};
use fieldrep_storage::HeapFile;

fn db_with_emps(n: usize) -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("DEPT", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("grade", FieldType::Float),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let d = db.insert("Dept", vec![Value::Str("D".into())]).unwrap();
    for i in 0..n {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("e{i}")),
                Value::Int(i as i64),
                Value::Float(i as f64 / 2.0),
                Value::Ref(d),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn spooled_rows_decode_back() {
    let mut db = db_with_emps(10);
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(2),
            hi: Value::Int(4),
        })
        .project(["name", "salary"])
        .spool(64)
        .run(&mut db)
        .unwrap();
    let f = res.output_file.unwrap();
    // The output file contains exactly the rows, decodable as value lists.
    let hf = HeapFile::open(f);
    let mut scan = hf.scan(db.sm()).unwrap();
    let mut decoded = Vec::new();
    while let Some((_, tag, payload)) = scan.next_record().unwrap() {
        assert_eq!(tag, 0xFFFD);
        decoded.push(Value::decode_list(&payload).unwrap());
    }
    assert_eq!(decoded.len(), 3);
    assert_eq!(decoded[0], vec![Value::Str("e2".into()), Value::Int(2)]);
    assert_eq!(decoded[2], vec![Value::Str("e4".into()), Value::Int(4)]);
    db.sm().drop_file(f).unwrap();
}

#[test]
fn plan_display_is_readable() {
    let mut db = db_with_emps(5);
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let plan = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "salary".into(),
            value: Value::Int(1),
        })
        .project(["name", "dept.name"])
        .plan(&db)
        .unwrap();
    let text = format!("{plan}");
    assert!(text.contains("index range"), "{text}");
    assert!(text.contains("in-place replica"), "{text}");
    assert!(text.contains("no join"), "{text}");
}

#[test]
fn empty_result_sets() {
    let mut db = db_with_emps(5);
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(100),
            hi: Value::Int(200),
        })
        .project(["name"])
        .run(&mut db)
        .unwrap();
    assert!(res.rows.is_empty());
    // Spooling an empty result produces an empty file.
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "salary".into(),
            value: Value::Int(-1),
        })
        .project(["name"])
        .spool(100)
        .run(&mut db)
        .unwrap();
    let f = res.output_file.unwrap();
    assert_eq!(HeapFile::open(f).count(db.sm()).unwrap(), 0);
    // Update query matching nothing updates nothing.
    let u = UpdateQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "salary".into(),
            value: Value::Int(-1),
        })
        .assign("salary", Assign::Set(Value::Int(0)))
        .run(&mut db)
        .unwrap();
    assert_eq!(u.updated, 0);
}

#[test]
fn float_and_string_eq_filters_via_scan() {
    let mut db = db_with_emps(8);
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Eq {
            path: "grade".into(),
            value: Value::Float(1.5),
        })
        .project(["name"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Some(Value::Str("e3".into())));

    let res = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "name".into(),
            lo: Value::Str("e2".into()),
            hi: Value::Str("e4".into()),
        })
        .project(["salary"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows.len(), 3);
}

#[test]
fn repeated_updates_via_cyclestr_always_change() {
    let mut db = db_with_emps(3);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let d = db.scan_set("Dept").unwrap()[0];
    db.update(d, &[("name", Value::Str("base#0".into()))])
        .unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..6 {
        UpdateQuery::on("Dept")
            .assign("name", Assign::CycleStr(4))
            .run(&mut db)
            .unwrap();
        let v = db.get_field(d, "name").unwrap();
        seen.insert(format!("{v}"));
        // Replica follows every cycle step.
        let e = db.scan_set("Emp1").unwrap()[0];
        let rep = db.deref_path(e, "dept.name").unwrap().unwrap();
        assert_eq!(rep[0], v);
    }
    assert_eq!(seen.len(), 4, "cycles through 4 distinct values: {seen:?}");
}

#[test]
fn projection_order_matches_request() {
    let mut db = db_with_emps(2);
    let res = ReadQuery::on("Emp1")
        .project(["salary", "name", "salary"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows[0].len(), 3);
    assert_eq!(res.rows[0][0], Some(Value::Int(0)));
    assert_eq!(res.rows[0][1], Some(Value::Str("e0".into())));
    assert_eq!(res.rows[0][2], Some(Value::Int(0)));
}

#[test]
fn index_range_ordering_vs_scan_ordering() {
    // Index access returns key order; full scan returns physical order.
    let mut db = db_with_emps(0);
    let d = db.scan_set("Dept").unwrap()[0];
    for salary in [5i64, 1, 9, 3] {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("s{salary}")),
                Value::Int(salary),
                Value::Float(0.0),
                Value::Ref(d),
            ],
        )
        .unwrap();
    }
    let scan_rows = ReadQuery::on("Emp1")
        .project(["salary"])
        .run(&mut db)
        .unwrap();
    let scanned: Vec<i64> = scan_rows
        .rows
        .iter()
        .map(|r| r[0].as_ref().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(scanned, vec![5, 1, 9, 3]);

    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    let q = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(0),
            hi: Value::Int(100),
        })
        .project(["salary"]);
    assert!(matches!(
        q.plan(&db).unwrap().access,
        AccessPlan::IndexRange { .. }
    ));
    let idx_rows = q.run(&mut db).unwrap();
    let indexed: Vec<i64> = idx_rows
        .rows
        .iter()
        .map(|r| r[0].as_ref().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(indexed, vec![1, 3, 5, 9]);
}
