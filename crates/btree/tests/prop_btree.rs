//! Property test: the B⁺-tree must agree with a sorted in-memory model
//! under random insert/delete/range workloads (DESIGN.md invariant 5).

use fieldrep_btree::{keys::encode_i64, BTreeIndex};
use fieldrep_storage::{FileId, Oid, StorageManager};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(i16, u16),
    Delete(usize),
    Range(i16, i16),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<i16>(), any::<u16>()).prop_map(|(k, o)| Op::Insert(k, o)),
        2 => (0..4096usize).prop_map(Op::Delete),
        1 => (any::<i16>(), any::<i16>()).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

fn mkoid(o: u16) -> Oid {
    Oid::new(FileId(3), o as u32, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_sorted_model(ops in proptest::collection::vec(op(), 1..400)) {
        let sm = StorageManager::in_memory(1024);
        let idx = BTreeIndex::create(&sm).unwrap();
        // model: set of (key, oid-number)
        let mut model: BTreeSet<(i16, u16)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Insert(k, o) => {
                    if model.insert((k, o)) {
                        idx.insert(&sm, &encode_i64(k as i64), mkoid(o)).unwrap();
                    } else {
                        prop_assert!(idx.insert(&sm, &encode_i64(k as i64), mkoid(o)).is_err());
                    }
                }
                Op::Delete(i) => {
                    if model.is_empty() { continue; }
                    let pick = *model.iter().nth(i % model.len()).unwrap();
                    model.remove(&pick);
                    prop_assert!(idx.delete(&sm, &encode_i64(pick.0 as i64), mkoid(pick.1)).unwrap());
                    prop_assert!(!idx.delete(&sm, &encode_i64(pick.0 as i64), mkoid(pick.1)).unwrap());
                }
                Op::Range(lo, hi) => {
                    let got = idx.range(&sm, &encode_i64(lo as i64), &encode_i64(hi as i64)).unwrap();
                    let want: Vec<(i16, u16)> = model.range((lo, 0)..=(hi, u16::MAX)).copied().collect();
                    prop_assert_eq!(got.len(), want.len());
                    for ((gk, go), (wk, wo)) in got.iter().zip(&want) {
                        prop_assert_eq!(fieldrep_btree::keys::decode_i64(gk), *wk as i64);
                        prop_assert_eq!(*go, mkoid(*wo));
                    }
                }
            }
        }

        prop_assert_eq!(idx.entry_count(&sm).unwrap(), model.len() as u64);
        // Full scan equals full model.
        let all = idx.scan_all(&sm).unwrap();
        prop_assert_eq!(all.len(), model.len());
        for ((gk, go), (wk, wo)) in all.iter().zip(model.iter()) {
            prop_assert_eq!(fieldrep_btree::keys::decode_i64(gk), *wk as i64);
            prop_assert_eq!(*go, mkoid(*wo));
        }
    }
}
