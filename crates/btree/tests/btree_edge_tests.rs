//! B⁺-tree edge-case tests: deep trees, emptied leaves, pathological key
//! shapes, and mixed workloads.

use fieldrep_btree::{keys, BTreeIndex, Entry};
use fieldrep_storage::{FileId, Oid, StorageManager};

fn sm() -> StorageManager {
    StorageManager::in_memory(2048)
}

fn oid(n: u32) -> Oid {
    Oid::new(FileId(7), n / 32, (n % 32) as u16)
}

#[test]
fn incremental_growth_to_height_three() {
    let sm = sm();
    let idx = BTreeIndex::create(&sm).unwrap();
    // Long keys force low fanout, so height 3 arrives quickly.
    let key = |i: i64| {
        let mut k = vec![0xAB; 100];
        k.extend_from_slice(&keys::encode_i64(i));
        k
    };
    let n = 4000i64;
    for i in 0..n {
        idx.insert(&sm, &key(i * 7 % n), oid(i as u32)).unwrap();
    }
    assert!(idx.height(&sm).unwrap() >= 3, "forced a deep tree");
    assert_eq!(idx.entry_count(&sm).unwrap(), n as u64);
    // Everything still findable.
    for i in (0..n).step_by(97) {
        assert_eq!(idx.lookup(&sm, &key(i)).unwrap().len(), 1, "key {i}");
    }
    // Full scan sorted and complete.
    let all = idx.scan_all(&sm).unwrap();
    assert_eq!(all.len(), n as usize);
    assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn range_scan_across_emptied_leaves() {
    let sm = sm();
    let entries: Vec<Entry> = (0..5000i64)
        .map(|i| (keys::encode_i64(i).to_vec(), oid(i as u32)))
        .collect();
    let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();
    // Empty out a band of keys in the middle (several whole leaves).
    for i in 1000..3000i64 {
        assert!(idx
            .delete(&sm, &keys::encode_i64(i), oid(i as u32))
            .unwrap());
    }
    // A range spanning the hole sees exactly the survivors.
    let hits = idx
        .range(&sm, &keys::encode_i64(500), &keys::encode_i64(3499))
        .unwrap();
    assert_eq!(hits.len(), 500 + 500); // 500..999 and 3000..3499
    assert_eq!(keys::decode_i64(&hits[0].0), 500);
    assert_eq!(keys::decode_i64(&hits.last().unwrap().0), 3499);
}

#[test]
fn many_duplicates_span_leaves() {
    let sm = sm();
    let idx = BTreeIndex::create(&sm).unwrap();
    // 2000 entries under ONE user key: duplicates must span many leaves
    // and still come back complete and OID-sorted.
    let key = keys::encode_i64(42);
    for i in 0..2000u32 {
        idx.insert(&sm, &key, oid(i)).unwrap();
    }
    let hits = idx.lookup(&sm, &key).unwrap();
    assert_eq!(hits.len(), 2000);
    assert!(hits.windows(2).all(|w| w[0] < w[1]));
    // Neighbouring keys are unaffected.
    assert!(idx.lookup(&sm, &keys::encode_i64(41)).unwrap().is_empty());
    assert!(idx.lookup(&sm, &keys::encode_i64(43)).unwrap().is_empty());
    // Delete a specific (key, oid) out of the middle.
    assert!(idx.delete(&sm, &key, oid(1000)).unwrap());
    assert_eq!(idx.lookup(&sm, &key).unwrap().len(), 1999);
}

#[test]
fn empty_range_and_reversed_bounds() {
    let sm = sm();
    let entries: Vec<Entry> = (0..100i64)
        .map(|i| (keys::encode_i64(i * 10).to_vec(), oid(i as u32)))
        .collect();
    let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();
    // Range strictly between keys.
    assert!(idx
        .range(&sm, &keys::encode_i64(11), &keys::encode_i64(19))
        .unwrap()
        .is_empty());
    // Range below and above all keys.
    assert!(idx
        .range(&sm, &keys::encode_i64(-100), &keys::encode_i64(-1))
        .unwrap()
        .is_empty());
    assert!(idx
        .range(&sm, &keys::encode_i64(10_000), &keys::encode_i64(20_000))
        .unwrap()
        .is_empty());
    // Inverted bounds: empty, not an error.
    assert!(idx
        .range(&sm, &keys::encode_i64(500), &keys::encode_i64(100))
        .unwrap()
        .is_empty());
}

#[test]
fn mixed_string_lengths() {
    let sm = sm();
    let idx = BTreeIndex::create(&sm).unwrap();
    let names = ["a", "ab", "abc", "b", "ba", "z", "zz", ""];
    for (i, n) in names.iter().enumerate() {
        idx.insert(&sm, &keys::encode_bytes(n.as_bytes()), oid(i as u32))
            .unwrap();
    }
    let all = idx.scan_all(&sm).unwrap();
    let decoded: Vec<String> = all
        .iter()
        .map(|(k, _)| String::from_utf8(keys::decode_bytes(k).0).unwrap())
        .collect();
    let mut want: Vec<String> = names.iter().map(std::string::ToString::to_string).collect();
    want.sort();
    assert_eq!(decoded, want);
    // Prefix range: all keys starting at or after "a" and at most "b".
    let hits = idx
        .range(&sm, &keys::encode_bytes(b"a"), &keys::encode_bytes(b"b"))
        .unwrap();
    assert_eq!(hits.len(), 4); // "a", "ab", "abc", "b"
}

#[test]
fn reinsert_after_delete() {
    let sm = sm();
    let idx = BTreeIndex::create(&sm).unwrap();
    let key = keys::encode_i64(5);
    for round in 0..50 {
        idx.insert(&sm, &key, oid(round)).unwrap();
        assert!(idx.delete(&sm, &key, oid(round)).unwrap());
    }
    assert_eq!(idx.entry_count(&sm).unwrap(), 0);
    idx.insert(&sm, &key, oid(999)).unwrap();
    assert_eq!(idx.lookup(&sm, &key).unwrap(), vec![oid(999)]);
}

#[test]
fn bulk_load_partial_fill_leaves_insert_room() {
    let sm = sm();
    let entries: Vec<Entry> = (0..10_000i64)
        .map(|i| (keys::encode_i64(i * 2).to_vec(), oid(i as u32)))
        .collect();
    // 70% fill: the classic setting for trees that keep growing.
    let idx = BTreeIndex::bulk_load(&sm, &entries, 0.7).unwrap();
    let pages_before = idx.pages(&sm).unwrap();
    // Odd keys squeeze between the evens; with 30% slack, few splits.
    for i in 0..2000i64 {
        idx.insert(&sm, &keys::encode_i64(i * 2 + 1), oid(100_000 + i as u32))
            .unwrap();
    }
    let all = idx.scan_all(&sm).unwrap();
    assert_eq!(all.len(), 12_000);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    let pages_after = idx.pages(&sm).unwrap();
    assert!(
        pages_after - pages_before < 30,
        "70% fill should absorb inserts with few new pages ({pages_before} → {pages_after})"
    );
}

#[test]
fn full_fill_bulk_load_splits_on_insert() {
    let sm = sm();
    let entries: Vec<Entry> = (0..5000i64)
        .map(|i| (keys::encode_i64(i * 2).to_vec(), oid(i as u32)))
        .collect();
    let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();
    // Inserting into packed leaves must split, not corrupt.
    for i in 0..500i64 {
        idx.insert(&sm, &keys::encode_i64(i * 20 + 1), oid(50_000 + i as u32))
            .unwrap();
    }
    let all = idx.scan_all(&sm).unwrap();
    assert_eq!(all.len(), 5500);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}
