//! On-page B⁺-tree node format.
//!
//! Nodes are parsed into an owned [`Node`] structure, mutated, and
//! serialized back. A node page reuses the common 40-byte page header (the
//! page kind distinguishes internal from leaf; the header's next-page field
//! chains leaves left-to-right), followed by:
//!
//! ```text
//! offset 40: entry count (u16)
//! offset 42: entries, each  [klen u16 | key bytes | payload]
//! ```
//!
//! * Internal payload: a 4-byte child page number. Entry keys are the
//!   minimum key of the child's subtree ("min-key" routing), so entry `i`
//!   routes all search keys in `[key_i, key_{i+1})`.
//! * Leaf payload: an 8-byte [`Oid`].
//!
//! All keys in a tree are unique because the index layer appends the OID
//! to the user key; duplicates of a user key therefore order by OID.

use fieldrep_storage::{Oid, PageKind, PageMut, PageView, PAGE_SIZE};

/// Byte offset of the entry count within a node page.
const OFF_COUNT: usize = 40;
/// Byte offset where entries begin.
const OFF_ENTRIES: usize = 42;
/// Maximum total bytes of serialized entries per node.
pub const NODE_CAPACITY: usize = PAGE_SIZE - OFF_ENTRIES;

/// Payload carried by a node entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Payload {
    /// Child page number (internal nodes).
    Child(u32),
    /// Record OID (leaf nodes).
    Rid(Oid),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::Child(_) => 4,
            Payload::Rid(_) => 8,
        }
    }
}

/// Serialized size of one entry.
pub fn entry_size(key: &[u8], payload: &Payload) -> usize {
    2 + key.len() + payload.len()
}

/// An owned, parsed B⁺-tree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// True for leaves, false for internal nodes.
    pub is_leaf: bool,
    /// Sorted entries.
    pub entries: Vec<(Vec<u8>, Payload)>,
    /// Next leaf (leaves only).
    pub next_leaf: Option<u32>,
}

impl Node {
    /// A fresh empty node.
    pub fn new(is_leaf: bool) -> Node {
        Node {
            is_leaf,
            entries: Vec::new(),
            next_leaf: None,
        }
    }

    /// Total serialized size of the entries.
    pub fn used_bytes(&self) -> usize {
        self.entries.iter().map(|(k, p)| entry_size(k, p)).sum()
    }

    /// Whether an extra entry of the given size still fits.
    pub fn fits(&self, extra: usize) -> bool {
        self.used_bytes() + extra <= NODE_CAPACITY
    }

    /// Parse a node from a page buffer.
    pub fn parse(data: &[u8]) -> Node {
        let view = PageView::new(data);
        let kind = view.kind().expect("btree page kind");
        let is_leaf = match kind {
            PageKind::BTreeLeaf => true,
            PageKind::BTreeInternal => false,
            other => panic!("not a btree page: {other:?}"),
        };
        let count = u16::from_le_bytes([data[OFF_COUNT], data[OFF_COUNT + 1]]) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = OFF_ENTRIES;
        for _ in 0..count {
            let klen = u16::from_le_bytes([data[off], data[off + 1]]) as usize;
            off += 2;
            let key = data[off..off + klen].to_vec();
            off += klen;
            let payload = if is_leaf {
                let oid = Oid::from_bytes(&data[off..off + 8]);
                off += 8;
                Payload::Rid(oid)
            } else {
                let child =
                    u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
                off += 4;
                Payload::Child(child)
            };
            entries.push((key, payload));
        }
        Node {
            is_leaf,
            entries,
            next_leaf: view.next_page(),
        }
    }

    /// Serialize the node into a page buffer (formats the page).
    pub fn serialize(&self, data: &mut [u8]) {
        debug_assert!(self.used_bytes() <= NODE_CAPACITY, "node overflow");
        let mut pg = PageMut::new(data);
        pg.init(if self.is_leaf {
            PageKind::BTreeLeaf
        } else {
            PageKind::BTreeInternal
        });
        pg.set_next_page(self.next_leaf);
        data[OFF_COUNT..OFF_COUNT + 2].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let mut off = OFF_ENTRIES;
        for (key, payload) in &self.entries {
            data[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            off += 2;
            data[off..off + key.len()].copy_from_slice(key);
            off += key.len();
            match payload {
                Payload::Rid(oid) => {
                    data[off..off + 8].copy_from_slice(&oid.to_bytes());
                    off += 8;
                }
                Payload::Child(c) => {
                    data[off..off + 4].copy_from_slice(&c.to_le_bytes());
                    off += 4;
                }
            }
        }
    }

    /// Index of the first entry with key ≥ `key` (binary search).
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.entries.partition_point(|(k, _)| k.as_slice() < key)
    }

    /// For internal nodes: the child to descend into for `key` — the last
    /// entry whose key is ≤ `key`, or the first entry if `key` precedes all
    /// (min-keys may be stale-low after deletions, which is harmless).
    pub fn route(&self, key: &[u8]) -> (usize, u32) {
        debug_assert!(!self.is_leaf);
        debug_assert!(!self.entries.is_empty());
        let idx = self
            .entries
            .partition_point(|(k, _)| k.as_slice() <= key)
            .saturating_sub(1);
        match self.entries[idx].1 {
            Payload::Child(c) => (idx, c),
            Payload::Rid(_) => unreachable!("internal node holds child payloads"),
        }
    }

    /// Split roughly in half by bytes; returns the new right sibling.
    /// `self` keeps the left half.
    pub fn split(&mut self) -> Node {
        let total = self.used_bytes();
        let mut acc = 0;
        let mut cut = self.entries.len();
        for (i, (k, p)) in self.entries.iter().enumerate() {
            acc += entry_size(k, p);
            if acc >= total / 2 {
                cut = i + 1;
                break;
            }
        }
        // Keep at least one entry on each side.
        let cut = cut.clamp(1, self.entries.len() - 1);
        let right_entries = self.entries.split_off(cut);
        Node {
            is_leaf: self.is_leaf,
            entries: right_entries,
            next_leaf: self.next_leaf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_storage::FileId;

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(1), n, 0)
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = Node::new(true);
        n.entries.push((b"alpha".to_vec(), Payload::Rid(oid(1))));
        n.entries.push((b"beta".to_vec(), Payload::Rid(oid(2))));
        n.next_leaf = Some(7);
        let mut page = vec![0u8; PAGE_SIZE];
        n.serialize(&mut page);
        let back = Node::parse(&page);
        assert!(back.is_leaf);
        assert_eq!(back.entries, n.entries);
        assert_eq!(back.next_leaf, Some(7));
    }

    #[test]
    fn internal_roundtrip_and_route() {
        let mut n = Node::new(false);
        n.entries.push((b"".to_vec(), Payload::Child(10)));
        n.entries.push((b"m".to_vec(), Payload::Child(20)));
        n.entries.push((b"t".to_vec(), Payload::Child(30)));
        let mut page = vec![0u8; PAGE_SIZE];
        n.serialize(&mut page);
        let back = Node::parse(&page);
        assert!(!back.is_leaf);
        assert_eq!(back.route(b"a").1, 10);
        assert_eq!(back.route(b"m").1, 20);
        assert_eq!(back.route(b"n").1, 20);
        assert_eq!(back.route(b"z").1, 30);
        // Keys preceding the first entry still route to the first child.
        let mut n2 = Node::new(false);
        n2.entries.push((b"g".to_vec(), Payload::Child(5)));
        assert_eq!(n2.route(b"a").1, 5);
    }

    #[test]
    fn split_halves_by_bytes() {
        let mut n = Node::new(true);
        for i in 0..100u32 {
            n.entries
                .push((format!("key{i:04}").into_bytes(), Payload::Rid(oid(i))));
        }
        n.next_leaf = Some(99);
        let right = n.split();
        assert!(!n.entries.is_empty() && !right.entries.is_empty());
        assert_eq!(n.entries.len() + right.entries.len(), 100);
        assert!(n.entries.last().unwrap().0 < right.entries[0].0);
        // Left kept ~half the bytes.
        let l = n.used_bytes() as f64;
        let r = right.used_bytes() as f64;
        assert!((l / (l + r) - 0.5).abs() < 0.1);
        // Right inherits the next pointer.
        assert_eq!(right.next_leaf, Some(99));
    }

    #[test]
    fn capacity_check() {
        let mut n = Node::new(true);
        let key = vec![7u8; 30];
        let e = entry_size(&key, &Payload::Rid(oid(0)));
        let mut added = 0;
        while n.fits(e) {
            n.entries.push((key.clone(), Payload::Rid(oid(added))));
            added += 1;
        }
        assert_eq!(added as usize, NODE_CAPACITY / e);
        let mut page = vec![0u8; PAGE_SIZE];
        n.serialize(&mut page); // must not panic
        assert_eq!(Node::parse(&page).entries.len(), added as usize);
    }
}
