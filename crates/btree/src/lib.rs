//! # fieldrep-btree
//!
//! A B⁺-tree index manager over the `fieldrep-storage` page layer.
//!
//! The paper's evaluation assumes B⁺-tree indexes on the selection fields
//! of `R` and `S` (§6.2: "read and update queries always access R and S
//! through the indexes on field_r and field_s"), and §3.3.4 builds indexes
//! directly on replicated path values. This crate provides both, plus the
//! index components needed by the Gemstone-style path-index baseline.
//!
//! Design notes:
//!
//! * Keys are raw byte strings compared lexicographically; the [`keys`]
//!   module supplies order-preserving, prefix-free encoders for integers,
//!   floats and strings.
//! * Every stored key is made unique by appending the 8-byte OID of the
//!   indexed record, so duplicate user keys are supported and deletes are
//!   exact.
//! * Leaves are chained left-to-right for range scans.
//! * Deletion is lazy (no rebalancing): emptied leaves are skipped by
//!   scans and reclaimed only on rebuild. Real systems (e.g. PostgreSQL)
//!   make the same trade-off; the workloads of the paper never shrink
//!   indexes.
//! * [`BTreeIndex::bulk_load`] builds a tree bottom-up from sorted input,
//!   which is how the benchmark harness creates its 10⁴–5·10⁵-entry
//!   indexes, and how *clustered* indexes are produced (the heap file is
//!   written in key order first, then bulk-loaded).

pub mod keys;
pub mod node;

use fieldrep_obs::{metrics, names as obs_names, Span};
use fieldrep_storage::{
    FileId, Oid, PageId, PageKind, PageMut, Result, StorageError, StorageManager,
};
use node::{entry_size, Node, Payload, NODE_CAPACITY};
use std::sync::{Arc, OnceLock};

/// Process-wide count of B⁺-tree node splits (`btree.splits`).
fn split_counter() -> &'static Arc<metrics::Counter> {
    static SPLITS: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    SPLITS.get_or_init(|| metrics::registry().counter(obs_names::BTREE_SPLITS))
}

/// Offsets within the meta page (page 0 of the index file).
const OFF_ROOT: usize = 40;
const OFF_HEIGHT: usize = 44;
const OFF_COUNT: usize = 46;

/// A B⁺-tree index stored in its own file. The handle is a plain file id;
/// all state lives on pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTreeIndex {
    /// The index file. Page 0 is the meta page; the rest are nodes.
    pub file: FileId,
}

/// One `(user key, oid)` index entry.
pub type Entry = (Vec<u8>, Oid);

fn composite(key: &[u8], oid: Oid) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 8);
    k.extend_from_slice(key);
    k.extend_from_slice(&oid.to_bytes());
    k
}

fn split_composite(comp: &[u8]) -> (Vec<u8>, Oid) {
    let n = comp.len() - 8;
    (comp[..n].to_vec(), Oid::from_bytes(&comp[n..]))
}

impl BTreeIndex {
    /// Create an empty index (meta page + one empty leaf as root).
    pub fn create(sm: &StorageManager) -> Result<BTreeIndex> {
        let file = sm.create_file()?;
        let (meta_pid, meta) = sm.pool().new_page(file)?;
        debug_assert_eq!(meta_pid.page, 0);
        let (root_pid, root) = sm.pool().new_page(file)?;
        {
            let mut data = root.data_mut();
            Node::new(true).serialize(&mut data[..]);
        }
        {
            let mut data = meta.data_mut();
            PageMut::new(&mut data[..]).init(PageKind::Meta);
            write_meta(&mut data[..], root_pid.page, 1, 0);
        }
        Ok(BTreeIndex { file })
    }

    /// Wrap an existing index file id (e.g. recorded in the catalog).
    pub fn open(file: FileId) -> BTreeIndex {
        BTreeIndex { file }
    }

    fn meta(&self, sm: &StorageManager) -> Result<(u32, u16, u64)> {
        let h = sm.pool().fetch(PageId::new(self.file, 0))?;
        let data = h.data();
        Ok(read_meta(&data[..]))
    }

    fn set_meta(&self, sm: &StorageManager, root: u32, height: u16, count: u64) -> Result<()> {
        let h = sm.pool().fetch(PageId::new(self.file, 0))?;
        let mut data = h.data_mut();
        write_meta(&mut data[..], root, height, count);
        Ok(())
    }

    /// Number of entries in the index.
    pub fn entry_count(&self, sm: &StorageManager) -> Result<u64> {
        Ok(self.meta(sm)?.2)
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn height(&self, sm: &StorageManager) -> Result<u16> {
        Ok(self.meta(sm)?.1)
    }

    fn load_node(&self, sm: &StorageManager, page: u32) -> Result<Node> {
        let h = sm.pool().fetch(PageId::new(self.file, page))?;
        let data = h.data();
        Ok(Node::parse(&data[..]))
    }

    fn store_node(&self, sm: &StorageManager, page: u32, node: &Node) -> Result<()> {
        let h = sm.pool().fetch(PageId::new(self.file, page))?;
        let mut data = h.data_mut();
        node.serialize(&mut data[..]);
        Ok(())
    }

    fn alloc_node(&self, sm: &StorageManager, node: &Node) -> Result<u32> {
        let (pid, h) = sm.pool().new_page(self.file)?;
        let mut data = h.data_mut();
        node.serialize(&mut data[..]);
        Ok(pid.page)
    }

    /// Insert `(key, oid)`. Duplicate user keys are allowed; the exact
    /// `(key, oid)` pair must be unique (inserting it twice is an error
    /// surfaced as `Corrupt`, because the replication engine relies on
    /// exact-once index maintenance).
    pub fn insert(&self, sm: &StorageManager, key: &[u8], oid: Oid) -> Result<()> {
        let _span = Span::enter(obs_names::BTREE_INSERT);
        let comp = composite(key, oid);
        let (root, height, count) = self.meta(sm)?;
        if let Some((sep, right_page)) = self.insert_rec(sm, root, &comp, oid)? {
            // Root split: make a new root above.
            let old_root_min = self.min_key_of(sm, root)?;
            let mut new_root = Node::new(false);
            new_root.entries.push((old_root_min, Payload::Child(root)));
            new_root.entries.push((sep, Payload::Child(right_page)));
            let new_root_page = self.alloc_node(sm, &new_root)?;
            self.set_meta(sm, new_root_page, height + 1, count + 1)?;
        } else {
            self.set_meta(sm, root, height, count + 1)?;
        }
        Ok(())
    }

    fn min_key_of(&self, sm: &StorageManager, page: u32) -> Result<Vec<u8>> {
        let node = self.load_node(sm, page)?;
        Ok(node
            .entries
            .first()
            .map(|(k, _)| k.clone())
            .unwrap_or_default())
    }

    /// Recursive insert; returns `Some((min_key_of_new_right, new_page))`
    /// if this node split.
    fn insert_rec(
        &self,
        sm: &StorageManager,
        page: u32,
        comp: &[u8],
        oid: Oid,
    ) -> Result<Option<(Vec<u8>, u32)>> {
        let mut node = self.load_node(sm, page)?;
        if node.is_leaf {
            let idx = node.lower_bound(comp);
            if node
                .entries
                .get(idx)
                .is_some_and(|(k, _)| k.as_slice() == comp)
            {
                return Err(StorageError::Corrupt(format!(
                    "duplicate (key, oid) insert into index {}",
                    self.file
                )));
            }
            node.entries.insert(idx, (comp.to_vec(), Payload::Rid(oid)));
        } else {
            let (slot, child) = node.route(comp);
            if let Some((sep, right)) = self.insert_rec(sm, child, comp, oid)? {
                let at = slot + 1;
                node.entries.insert(at, (sep, Payload::Child(right)));
            } else {
                return Ok(None);
            }
        }
        if node.used_bytes() <= NODE_CAPACITY {
            self.store_node(sm, page, &node)?;
            return Ok(None);
        }
        // Split.
        split_counter().inc();
        let mut right = node.split();
        let sep = right.entries[0].0.clone();
        let right_page = self.alloc_node(sm, &right)?;
        if node.is_leaf {
            right.next_leaf = node.next_leaf;
            node.next_leaf = Some(right_page);
            // `right` was serialized before the next_leaf fix-up; rewrite it.
            self.store_node(sm, right_page, &right)?;
        }
        self.store_node(sm, page, &node)?;
        Ok(Some((sep, right_page)))
    }

    /// Delete the exact `(key, oid)` entry. Returns `true` if it existed.
    pub fn delete(&self, sm: &StorageManager, key: &[u8], oid: Oid) -> Result<bool> {
        let comp = composite(key, oid);
        let (root, height, count) = self.meta(sm)?;
        let mut page = root;
        for _ in 1..height {
            let node = self.load_node(sm, page)?;
            page = node.route(&comp).1;
        }
        let mut leaf = self.load_node(sm, page)?;
        debug_assert!(leaf.is_leaf);
        let idx = leaf.lower_bound(&comp);
        if leaf
            .entries
            .get(idx)
            .is_some_and(|(k, _)| k.as_slice() == comp)
        {
            leaf.entries.remove(idx);
            self.store_node(sm, page, &leaf)?;
            self.set_meta(sm, root, height, count - 1)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// All OIDs stored under exactly `key`, in OID order.
    pub fn lookup(&self, sm: &StorageManager, key: &[u8]) -> Result<Vec<Oid>> {
        let _span = Span::enter(obs_names::BTREE_LOOKUP);
        Ok(self
            .range(sm, key, key)?
            .into_iter()
            .map(|(_, oid)| oid)
            .collect())
    }

    /// All `(key, oid)` entries with `lo ≤ key ≤ hi` (user keys, both
    /// inclusive), in key order.
    pub fn range(&self, sm: &StorageManager, lo: &[u8], hi: &[u8]) -> Result<Vec<Entry>> {
        let span = Span::enter(obs_names::BTREE_RANGE);
        let lo_comp = composite(lo, Oid::new(FileId(0), 0, 0));
        let mut hi_comp = hi.to_vec();
        hi_comp.extend_from_slice(&[0xFF; 8]);

        let (root, height, _) = self.meta(sm)?;
        let mut page = root;
        for _ in 1..height {
            let node = self.load_node(sm, page)?;
            page = node.route(&lo_comp).1;
        }
        let mut out = Vec::new();
        loop {
            let leaf = self.load_node(sm, page)?;
            debug_assert!(leaf.is_leaf);
            for (k, p) in &leaf.entries {
                if k.as_slice() < lo_comp.as_slice() {
                    continue;
                }
                if k.as_slice() > hi_comp.as_slice() {
                    span.note("entries", out.len());
                    return Ok(out);
                }
                let (user, oid_from_key) = split_composite(k);
                match p {
                    Payload::Rid(oid) => {
                        debug_assert_eq!(*oid, oid_from_key);
                        out.push((user, *oid));
                    }
                    Payload::Child(_) => unreachable!("leaf holds RIDs"),
                }
            }
            match leaf.next_leaf {
                Some(next) => page = next,
                None => {
                    span.note("entries", out.len());
                    return Ok(out);
                }
            }
        }
    }

    /// Every entry in the index, in key order.
    pub fn scan_all(&self, sm: &StorageManager) -> Result<Vec<Entry>> {
        self.range(sm, &[], &[0xFF; 64])
    }

    /// Build an index bottom-up from entries sorted by `(key, oid)`.
    ///
    /// `fill` is the leaf/internal fill factor in `(0, 1]`; the benchmark
    /// harness uses 1.0 for static files (the paper's sets never grow
    /// during an experiment).
    pub fn bulk_load(sm: &StorageManager, entries: &[Entry], fill: f64) -> Result<BTreeIndex> {
        let span = Span::enter(obs_names::BTREE_BULK_LOAD);
        span.note("entries", entries.len());
        assert!(fill > 0.0 && fill <= 1.0, "bad fill factor");
        debug_assert!(
            entries
                .windows(2)
                .all(|w| composite(&w[0].0, w[0].1) < composite(&w[1].0, w[1].1)),
            "bulk_load input must be sorted by (key, oid) and unique"
        );
        let index = BTreeIndex::create(sm)?;
        if entries.is_empty() {
            return Ok(index);
        }
        let budget = (((NODE_CAPACITY as f64) * fill) as usize).min(NODE_CAPACITY);

        // Build leaves.
        let mut leaf_nodes: Vec<Node> = Vec::new();
        let mut cur = Node::new(true);
        for (key, oid) in entries {
            let comp = composite(key, *oid);
            let sz = entry_size(&comp, &Payload::Rid(*oid));
            if !cur.entries.is_empty() && cur.used_bytes() + sz > budget {
                leaf_nodes.push(std::mem::replace(&mut cur, Node::new(true)));
            }
            cur.entries.push((comp, Payload::Rid(*oid)));
        }
        leaf_nodes.push(cur);

        // Allocate leaf pages, chain them, record min keys.
        let mut pages = Vec::with_capacity(leaf_nodes.len());
        for _ in 0..leaf_nodes.len() {
            let (pid, _h) = sm.pool().new_page(index.file)?;
            pages.push(pid.page);
        }
        let mut level: Vec<(Vec<u8>, u32)> = Vec::with_capacity(leaf_nodes.len());
        for (i, mut n) in leaf_nodes.into_iter().enumerate() {
            n.next_leaf = pages.get(i + 1).copied();
            index.store_node(sm, pages[i], &n)?;
            level.push((n.entries[0].0.clone(), pages[i]));
        }

        // Build internal levels until one node remains.
        let mut height = 1u16;
        while level.len() > 1 {
            let below = std::mem::take(&mut level);
            let mut nodes: Vec<Node> = Vec::new();
            let mut cur = Node::new(false);
            for (min_key, page) in below {
                let sz = entry_size(&min_key, &Payload::Child(page));
                if !cur.entries.is_empty() && cur.used_bytes() + sz > budget {
                    nodes.push(std::mem::replace(&mut cur, Node::new(false)));
                }
                cur.entries.push((min_key, Payload::Child(page)));
            }
            nodes.push(cur);
            for n in nodes {
                let page = index.alloc_node(sm, &n)?;
                level.push((n.entries[0].0.clone(), page));
            }
            height += 1;
        }
        let root = level[0].1;
        index.set_meta(sm, root, height, entries.len() as u64)?;
        Ok(index)
    }

    /// Number of pages in the index file.
    pub fn pages(&self, sm: &StorageManager) -> Result<u32> {
        sm.page_count(self.file)
    }
}

fn write_meta(data: &mut [u8], root: u32, height: u16, count: u64) {
    data[OFF_ROOT..OFF_ROOT + 4].copy_from_slice(&root.to_le_bytes());
    data[OFF_HEIGHT..OFF_HEIGHT + 2].copy_from_slice(&height.to_le_bytes());
    data[OFF_COUNT..OFF_COUNT + 8].copy_from_slice(&count.to_le_bytes());
}

fn read_meta(data: &[u8]) -> (u32, u16, u64) {
    let root = u32::from_le_bytes(data[OFF_ROOT..OFF_ROOT + 4].try_into().unwrap());
    let height = u16::from_le_bytes(data[OFF_HEIGHT..OFF_HEIGHT + 2].try_into().unwrap());
    let count = u64::from_le_bytes(data[OFF_COUNT..OFF_COUNT + 8].try_into().unwrap());
    (root, height, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keys::encode_i64;

    fn sm() -> StorageManager {
        StorageManager::in_memory(512)
    }

    fn oid(n: u32) -> Oid {
        Oid::new(FileId(9), n / 64, (n % 64) as u16)
    }

    #[test]
    fn empty_index() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        assert_eq!(idx.entry_count(&sm).unwrap(), 0);
        assert_eq!(idx.height(&sm).unwrap(), 1);
        assert!(idx.lookup(&sm, &encode_i64(5)).unwrap().is_empty());
        assert!(idx.scan_all(&sm).unwrap().is_empty());
    }

    #[test]
    fn insert_lookup_small() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        for i in 0..100i64 {
            idx.insert(&sm, &encode_i64(i), oid(i as u32)).unwrap();
        }
        assert_eq!(idx.entry_count(&sm).unwrap(), 100);
        for i in 0..100i64 {
            assert_eq!(
                idx.lookup(&sm, &encode_i64(i)).unwrap(),
                vec![oid(i as u32)]
            );
        }
        assert!(idx.lookup(&sm, &encode_i64(100)).unwrap().is_empty());
    }

    #[test]
    fn inserts_cause_splits_and_stay_sorted() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        // Insert in a scrambled order to exercise splits everywhere.
        let n: i64 = 5000;
        let mut order: Vec<i64> = (0..n).collect();
        for i in 0..order.len() {
            let j = (i * 2654435761) % order.len();
            order.swap(i, j);
        }
        for &i in &order {
            idx.insert(&sm, &encode_i64(i), oid(i as u32)).unwrap();
        }
        assert!(idx.height(&sm).unwrap() >= 2, "tree actually split");
        let all = idx.scan_all(&sm).unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, o)) in all.iter().enumerate() {
            assert_eq!(keys::decode_i64(k), i as i64);
            assert_eq!(*o, oid(i as u32));
        }
    }

    #[test]
    fn duplicate_user_keys() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        for i in 0..50u32 {
            idx.insert(&sm, &encode_i64(7), oid(i)).unwrap();
        }
        let hits = idx.lookup(&sm, &encode_i64(7)).unwrap();
        assert_eq!(hits.len(), 50);
        let mut sorted = hits.clone();
        sorted.sort();
        assert_eq!(hits, sorted, "duplicates come back in OID order");
        // Exact duplicate (key, oid) is rejected.
        assert!(idx.insert(&sm, &encode_i64(7), oid(3)).is_err());
    }

    #[test]
    fn range_scan_inclusive() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        for i in 0..1000i64 {
            idx.insert(&sm, &encode_i64(i * 2), oid(i as u32)).unwrap();
        }
        let hits = idx.range(&sm, &encode_i64(100), &encode_i64(200)).unwrap();
        // Even keys 100..=200 → 51 entries.
        assert_eq!(hits.len(), 51);
        assert_eq!(keys::decode_i64(&hits[0].0), 100);
        assert_eq!(keys::decode_i64(&hits.last().unwrap().0), 200);
        // Bounds that fall between keys.
        let hits = idx.range(&sm, &encode_i64(101), &encode_i64(103)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(keys::decode_i64(&hits[0].0), 102);
    }

    #[test]
    fn delete_exact_entries() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        for i in 0..2000i64 {
            idx.insert(&sm, &encode_i64(i), oid(i as u32)).unwrap();
        }
        for i in (0..2000i64).step_by(2) {
            assert!(idx.delete(&sm, &encode_i64(i), oid(i as u32)).unwrap());
        }
        assert_eq!(idx.entry_count(&sm).unwrap(), 1000);
        assert!(!idx.delete(&sm, &encode_i64(0), oid(0)).unwrap());
        for i in (1..2000i64).step_by(2) {
            assert_eq!(idx.lookup(&sm, &encode_i64(i)).unwrap().len(), 1);
        }
        for i in (0..2000i64).step_by(2) {
            assert!(idx.lookup(&sm, &encode_i64(i)).unwrap().is_empty());
        }
        // Delete with the right key but wrong oid.
        assert!(!idx.delete(&sm, &encode_i64(1), oid(999_999)).unwrap());
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let sm = sm();
        let entries: Vec<Entry> = (0..20_000i64)
            .map(|i| (encode_i64(i).to_vec(), oid(i as u32)))
            .collect();
        let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();
        assert_eq!(idx.entry_count(&sm).unwrap(), 20_000);
        let all = idx.scan_all(&sm).unwrap();
        assert_eq!(all.len(), 20_000);
        for (i, (k, o)) in all.iter().enumerate() {
            assert_eq!(keys::decode_i64(k), i as i64);
            assert_eq!(*o, oid(i as u32));
        }
        // Point lookups and deletes work on a bulk-loaded tree.
        assert_eq!(idx.lookup(&sm, &encode_i64(12_345)).unwrap().len(), 1);
        assert!(idx.delete(&sm, &encode_i64(12_345), oid(12_345)).unwrap());
        assert!(idx.lookup(&sm, &encode_i64(12_345)).unwrap().is_empty());
        // Inserts after bulk load still split correctly.
        for i in 0..100u32 {
            idx.insert(&sm, &encode_i64(50_000), oid(1_000_000 + i))
                .unwrap();
        }
        assert_eq!(idx.lookup(&sm, &encode_i64(50_000)).unwrap().len(), 100);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let sm = sm();
        let idx = BTreeIndex::bulk_load(&sm, &[], 1.0).unwrap();
        assert_eq!(idx.entry_count(&sm).unwrap(), 0);
        let one = vec![(encode_i64(1).to_vec(), oid(1))];
        let idx = BTreeIndex::bulk_load(&sm, &one, 1.0).unwrap();
        assert_eq!(idx.lookup(&sm, &encode_i64(1)).unwrap(), vec![oid(1)]);
    }

    #[test]
    fn string_keys() {
        let sm = sm();
        let idx = BTreeIndex::create(&sm).unwrap();
        let names = ["delta", "alpha", "charlie", "bravo", "echo"];
        for (i, n) in names.iter().enumerate() {
            idx.insert(&sm, &keys::encode_bytes(n.as_bytes()), oid(i as u32))
                .unwrap();
        }
        let all = idx.scan_all(&sm).unwrap();
        let decoded: Vec<String> = all
            .iter()
            .map(|(k, _)| String::from_utf8(keys::decode_bytes(k).0).unwrap())
            .collect();
        assert_eq!(decoded, vec!["alpha", "bravo", "charlie", "delta", "echo"]);
    }

    #[test]
    fn fanout_is_high_for_short_keys() {
        // The paper uses m = 350. With 8-byte integer keys + 8-byte OID
        // suffixes our leaf fanout is 4054/26 ≈ 155 and internal fanout
        // 4054/22 ≈ 184 — same order of magnitude; the analytical model
        // keeps the paper's m = 350.
        let sm = sm();
        let entries: Vec<Entry> = (0..100_000i64)
            .map(|i| (encode_i64(i).to_vec(), oid(i as u32)))
            .collect();
        let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();
        assert!(idx.height(&sm).unwrap() <= 3);
    }
}
