//! Order-preserving key encodings.
//!
//! The tree compares keys as raw byte strings, so every value that goes
//! into an index must be encoded such that bytewise lexicographic order
//! equals value order, and such that no encoded key is a strict prefix of
//! another (prefix-freedom keeps composite keys — user key followed by an
//! OID suffix — ordered correctly).
//!
//! * Integers: big-endian with the sign bit flipped (fixed width, trivially
//!   prefix-free against themselves).
//! * Floats: IEEE total-order trick (sign-dependent bit flip).
//! * Strings/bytes: `0x00` escaped as `0x00 0xFF`, terminated by
//!   `0x00 0x00` — prefix-free and order-preserving.

/// Encode a signed 64-bit integer.
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decode a value produced by [`encode_i64`].
pub fn decode_i64(b: &[u8]) -> i64 {
    let raw = u64::from_be_bytes(b[..8].try_into().expect("8-byte key"));
    (raw ^ (1u64 << 63)) as i64
}

/// Encode an `f64` so that bytewise order equals numeric order (NaNs sort
/// above +inf; -0.0 and +0.0 compare equal-adjacent).
pub fn encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    };
    flipped.to_be_bytes()
}

/// Decode a value produced by [`encode_f64`].
pub fn decode_f64(b: &[u8]) -> f64 {
    let raw = u64::from_be_bytes(b[..8].try_into().expect("8-byte key"));
    let bits = if raw & (1 << 63) != 0 {
        raw ^ (1 << 63)
    } else {
        !raw
    };
    f64::from_bits(bits)
}

/// Encode a byte string (or UTF-8 string) into a prefix-free,
/// order-preserving form.
pub fn encode_bytes(v: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() + 2);
    for &b in v {
        if b == 0 {
            out.push(0);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0);
    out.push(0);
    out
}

/// Decode a value produced by [`encode_bytes`]. Returns the decoded bytes
/// and the number of encoded bytes consumed.
pub fn decode_bytes(b: &[u8]) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        if b[i] == 0 {
            if b[i + 1] == 0 {
                return (out, i + 2);
            }
            debug_assert_eq!(b[i + 1], 0xFF, "bad escape");
            out.push(0);
            i += 2;
        } else {
            out.push(b[i]);
            i += 1;
        }
    }
    panic!("unterminated encoded byte string");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_order_and_roundtrip() {
        let vals = [i64::MIN, -100_000, -1, 0, 1, 42, 100_000, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn f64_order_and_roundtrip() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) <= encode_f64(w[1]), "{} <= {}", w[0], w[1]);
        }
        for v in vals {
            let back = decode_f64(&encode_f64(v));
            assert!(back == v || (back == 0.0 && v == 0.0));
        }
    }

    #[test]
    fn bytes_order_prefix_free() {
        let a = encode_bytes(b"ab");
        let b = encode_bytes(b"abc");
        let c = encode_bytes(b"b");
        assert!(a < b && b < c);
        // Prefix-freedom: `a` must not be a prefix of `b`.
        assert!(!b.starts_with(&a));
        // Embedded NULs survive.
        let z = encode_bytes(b"a\0b");
        let (back, used) = decode_bytes(&z);
        assert_eq!(back, b"a\0b");
        assert_eq!(used, z.len());
        // "a\0b" sorts after "a" and before "ab".
        let just_a = encode_bytes(b"a");
        let ab = encode_bytes(b"ab");
        assert!(just_a < z && z < ab);
    }

    #[test]
    fn bytes_roundtrip_with_suffix() {
        let enc = encode_bytes(b"key");
        let mut composite = enc.clone();
        composite.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let (back, used) = decode_bytes(&composite);
        assert_eq!(back, b"key");
        assert_eq!(&composite[used..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
