//! Page-I/O accounting hooks.
//!
//! The storage layer calls one `record_*` function per buffer-pool or
//! disk event. Each call bumps a thread-local [`IoCounts`] — the basis
//! for span and profile attribution, exact per thread because the engine
//! executes a query on one thread — and a mirrored global counter in the
//! [`metrics`](crate::metrics) registry for process-wide totals.

use std::cell::Cell;
use std::ops::{Add, AddAssign, Sub};
use std::sync::OnceLock;

use crate::metrics::{registry, Counter};
use crate::names;
use std::sync::Arc;

/// A bundle of page-I/O event counts (or a delta between two snapshots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounts {
    /// Pages read from disk.
    pub disk_reads: u64,
    /// Pages written to disk.
    pub disk_writes: u64,
    /// Pages allocated on disk.
    pub disk_allocs: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses.
    pub pool_misses: u64,
    /// Buffer-pool frame evictions.
    pub evictions: u64,
}

impl IoCounts {
    /// Total disk transfers (reads + writes).
    pub fn disk_total(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// Total page touches through the pool (hits + misses).
    pub fn page_touches(&self) -> u64 {
        self.pool_hits + self.pool_misses
    }

    /// True if every count is zero.
    pub fn is_zero(&self) -> bool {
        *self == IoCounts::default()
    }

    /// Saturating per-field difference (`self` later, `earlier` first).
    pub fn delta_since(&self, earlier: &IoCounts) -> IoCounts {
        IoCounts {
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            disk_allocs: self.disk_allocs.saturating_sub(earlier.disk_allocs),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

impl Add for IoCounts {
    type Output = IoCounts;
    fn add(self, rhs: IoCounts) -> IoCounts {
        IoCounts {
            disk_reads: self.disk_reads + rhs.disk_reads,
            disk_writes: self.disk_writes + rhs.disk_writes,
            disk_allocs: self.disk_allocs + rhs.disk_allocs,
            pool_hits: self.pool_hits + rhs.pool_hits,
            pool_misses: self.pool_misses + rhs.pool_misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl AddAssign for IoCounts {
    fn add_assign(&mut self, rhs: IoCounts) {
        *self = *self + rhs;
    }
}

impl Sub for IoCounts {
    type Output = IoCounts;
    fn sub(self, rhs: IoCounts) -> IoCounts {
        self.delta_since(&rhs)
    }
}

thread_local! {
    static DISK_READS: Cell<u64> = const { Cell::new(0) };
    static DISK_WRITES: Cell<u64> = const { Cell::new(0) };
    static DISK_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static POOL_HITS: Cell<u64> = const { Cell::new(0) };
    static POOL_MISSES: Cell<u64> = const { Cell::new(0) };
    static EVICTIONS: Cell<u64> = const { Cell::new(0) };
}

struct Mirror {
    disk_reads: Arc<Counter>,
    disk_writes: Arc<Counter>,
    disk_allocs: Arc<Counter>,
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

fn mirror() -> &'static Mirror {
    static MIRROR: OnceLock<Mirror> = OnceLock::new();
    MIRROR.get_or_init(|| {
        let r = registry();
        Mirror {
            disk_reads: r.counter(names::STORAGE_DISK_READS),
            disk_writes: r.counter(names::STORAGE_DISK_WRITES),
            disk_allocs: r.counter(names::STORAGE_DISK_ALLOCS),
            pool_hits: r.counter(names::STORAGE_POOL_HITS),
            pool_misses: r.counter(names::STORAGE_POOL_MISSES),
            evictions: r.counter(names::STORAGE_POOL_EVICTIONS),
        }
    })
}

macro_rules! record_fn {
    ($(#[$meta:meta])* $name:ident, $cell:ident, $counter:ident) => {
        $(#[$meta])*
        pub fn $name() {
            $cell.with(|c| c.set(c.get() + 1));
            mirror().$counter.inc();
        }
    };
}

record_fn!(
    /// Record one page read from disk.
    record_disk_read, DISK_READS, disk_reads
);
record_fn!(
    /// Record one page written to disk.
    record_disk_write, DISK_WRITES, disk_writes
);
record_fn!(
    /// Record one page allocated on disk.
    record_disk_alloc, DISK_ALLOCS, disk_allocs
);
record_fn!(
    /// Record one buffer-pool hit.
    record_pool_hit, POOL_HITS, pool_hits
);
record_fn!(
    /// Record one buffer-pool miss.
    record_pool_miss, POOL_MISSES, pool_misses
);
record_fn!(
    /// Record one buffer-pool frame eviction.
    record_eviction, EVICTIONS, evictions
);

/// Snapshot this thread's cumulative I/O counts.
///
/// Subtract two snapshots (or use [`IoCounts::delta_since`]) to attribute
/// the I/O that happened between them.
pub fn snapshot() -> IoCounts {
    IoCounts {
        disk_reads: DISK_READS.with(Cell::get),
        disk_writes: DISK_WRITES.with(Cell::get),
        disk_allocs: DISK_ALLOCS.with(Cell::get),
        pool_hits: POOL_HITS.with(Cell::get),
        pool_misses: POOL_MISSES.with(Cell::get),
        evictions: EVICTIONS.with(Cell::get),
    }
}

// ---------------------------------------------------------------------------
// Named component accumulators.
//
// Lower layers sometimes do work *inside* a segment that an upper layer
// wants to attribute separately (e.g. replica propagation inside a query's
// "apply" operator). The lower layer adds its delta under a name; the
// upper layer takes it and splits its own segment.

use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    static COMPONENTS: RefCell<HashMap<&'static str, IoCounts>> = RefCell::new(HashMap::new());
}

/// Accumulate `delta` under `name` for the current thread.
///
/// Non-zero deltas are also fed to the always-on
/// [flight recorder](crate::recorder) as metric-delta events, so a
/// post-mortem dump shows which component moved pages right before a
/// failure.
pub fn component_add(name: &'static str, delta: IoCounts) {
    if !delta.is_zero() {
        crate::recorder::record(name, crate::recorder::EventKind::IoDelta { io: delta });
    }
    COMPONENTS.with(|m| {
        *m.borrow_mut().entry(name).or_default() += delta;
    });
}

/// Take (and reset) the accumulated delta for `name` on this thread.
pub fn component_take(name: &str) -> IoCounts {
    COMPONENTS.with(|m| m.borrow_mut().remove(name).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_delta_cleanly() {
        let before = snapshot();
        record_disk_read();
        record_disk_read();
        record_pool_hit();
        record_eviction();
        let delta = snapshot() - before;
        assert_eq!(delta.disk_reads, 2);
        assert_eq!(delta.pool_hits, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.disk_writes, 0);
        assert_eq!(delta.disk_total(), 2);
    }

    #[test]
    fn thread_locals_do_not_leak_across_threads() {
        let before = snapshot();
        std::thread::spawn(|| {
            for _ in 0..100 {
                record_disk_write();
            }
        })
        .join()
        .unwrap();
        let delta = snapshot() - before;
        assert_eq!(
            delta.disk_writes, 0,
            "other thread's I/O must not appear here"
        );
    }

    #[test]
    fn components_accumulate_and_reset() {
        assert!(component_take("t.alpha").is_zero());
        component_add(
            "t.alpha",
            IoCounts {
                pool_hits: 3,
                ..Default::default()
            },
        );
        component_add(
            "t.alpha",
            IoCounts {
                pool_hits: 2,
                disk_reads: 1,
                ..Default::default()
            },
        );
        let taken = component_take("t.alpha");
        assert_eq!(taken.pool_hits, 5);
        assert_eq!(taken.disk_reads, 1);
        assert!(component_take("t.alpha").is_zero(), "take resets");
    }
}
