//! Central registry of every observability name in the workspace.
//!
//! Every metric, gauge, histogram, span, profile-operator, and I/O
//! component name used anywhere in the engine is declared here, once,
//! as a `pub const`. Call sites reference the constants instead of
//! repeating string literals, so the EXPLAIN-ANALYZE join (which matches
//! cost-model predictions to measured operators *by name*) and the
//! `costmodel.drift.*` gauge family can never silently miss because of a
//! typo in one layer.
//!
//! The contract is machine-checked: `fieldrep-lint` rule **L2** parses
//! this file, flags any string literal passed to an obs API elsewhere in
//! the workspace that is not registered here, and cross-checks
//! `fieldrep_costmodel::conformance::DRIFT_METRICS` against the
//! `costmodel.drift.*` entries below. Removing a constant that a call
//! site still uses fails compilation; adding a new name at a call site
//! without registering it fails `scripts/check.sh`.

// --- storage: disk counters -----------------------------------------------

/// Pages read from disk (counter).
pub const STORAGE_DISK_READS: &str = "storage.disk.reads";
/// Pages written to disk (counter).
pub const STORAGE_DISK_WRITES: &str = "storage.disk.writes";
/// Pages allocated on disk (counter).
pub const STORAGE_DISK_ALLOCS: &str = "storage.disk.allocs";
/// Pages per grouped disk read (histogram).
pub const STORAGE_DISK_BATCH_LEN: &str = "storage.disk.batch_len";

// --- storage: buffer pool -------------------------------------------------

/// Buffer-pool hits (counter).
pub const STORAGE_POOL_HITS: &str = "storage.pool.hits";
/// Buffer-pool misses (counter).
pub const STORAGE_POOL_MISSES: &str = "storage.pool.misses";
/// Buffer-pool frame evictions with write-back (counter).
pub const STORAGE_POOL_EVICTIONS: &str = "storage.pool.evictions";
/// Victim searches that stole a frame from a non-home shard (counter).
pub const STORAGE_POOL_SHARD_CONTENTION: &str = "storage.pool.shard_contention";
/// hits / (hits + misses), derived at snapshot time.
pub const STORAGE_POOL_HIT_RATE: &str = "storage.pool.hit_rate";
/// Pages read ahead by the prefetch hint (counter).
pub const STORAGE_PREFETCH_ISSUED: &str = "storage.prefetch.issued";
/// Fetches served from a still-resident prefetched frame (counter).
pub const STORAGE_PREFETCH_HIT: &str = "storage.prefetch.hit";

// --- storage: write-ahead log and checksums ---------------------------------

/// WAL records appended (counter).
pub const WAL_APPENDS: &str = "wal.appends";
/// WAL fsync barriers issued (counter).
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Bytes appended to the WAL (counter).
pub const WAL_BYTES: &str = "wal.bytes";
/// Commits that found their LSN already durable thanks to another
/// transaction's fsync — the group-commit win (counter).
pub const WAL_GROUP_COMMIT_COALESCED: &str = "wal.group_commit.coalesced";
/// Page images replayed by crash recovery (counter).
pub const WAL_REPLAYED_PAGES: &str = "wal.replayed_pages";
/// Crash-recovery passes run at open (counter).
pub const WAL_RECOVERIES: &str = "wal.recoveries";
/// Unlogged dirty pages autocommitted as implicit single-page
/// transactions at eviction time (counter).
pub const WAL_AUTOCOMMITS: &str = "wal.autocommits";
/// Pages whose CRC32 failed verification on read (counter).
pub const STORAGE_CHECKSUM_FAILURES: &str = "storage.checksum.failures";

// --- btree ----------------------------------------------------------------

/// Leaf/internal node splits (counter).
pub const BTREE_SPLITS: &str = "btree.splits";
/// Span: single-key insert.
pub const BTREE_INSERT: &str = "btree.insert";
/// Span: single-key lookup.
pub const BTREE_LOOKUP: &str = "btree.lookup";
/// Span: range scan.
pub const BTREE_RANGE: &str = "btree.range";
/// Span: bulk load.
pub const BTREE_BULK_LOAD: &str = "btree.bulk_load";

// --- core: replica propagation --------------------------------------------

/// Span, I/O component, and profile operator: one propagation round.
pub const CORE_PROPAGATE: &str = "core.propagate";
/// In-place propagations (counter) and the per-strategy span.
pub const CORE_PROPAGATE_INPLACE: &str = "core.propagate.inplace";
/// Separate propagations (counter) and the per-strategy span.
pub const CORE_PROPAGATE_SEPARATE: &str = "core.propagate.separate";
/// Deferred propagations queued (counter).
pub const CORE_PROPAGATE_DEFERRED: &str = "core.propagate.deferred";
/// Span: intermediate-hop maintenance.
pub const CORE_PROPAGATE_INTERMEDIATE: &str = "core.propagate.intermediate";
/// Terminal-update fan-out (histogram).
pub const CORE_PROPAGATE_FANOUT: &str = "core.propagate.fanout";
/// Distinct pages touched per fan-out (histogram).
pub const CORE_PROPAGATE_PAGES_PER_FANOUT: &str = "core.propagate.pages_per_fanout";

// --- obs: flight recorder and timeline self-metrics ------------------------

/// Events recorded into the flight-recorder ring (counter).
pub const OBS_RECORDER_EVENTS: &str = "obs.recorder.events";
/// Ring-buffer events overwritten before being dumped (counter).
pub const OBS_RECORDER_DROPPED: &str = "obs.recorder.dropped";
/// Flight-recorder JSONL dumps produced (counter).
pub const OBS_RECORDER_DUMPS: &str = "obs.recorder.dumps";
/// Engine errors recorded through the recorder's error hook (counter).
pub const OBS_RECORDER_ERRORS: &str = "obs.recorder.errors";
/// Flight-recorder dumps suppressed by the per-sink rate limit (counter).
pub const OBS_RECORDER_DUMPS_SUPPRESSED: &str = "obs.recorder.dumps_suppressed";
/// Timeline ticks taken against the global registry (counter).
pub const OBS_TIMELINE_TICKS: &str = "obs.timeline.ticks";
/// Timeline ticks evicted from the bounded series (counter).
pub const OBS_TIMELINE_EVICTED: &str = "obs.timeline.evicted";
/// Statements recorded into the slow-query ring (counter).
pub const OBS_SLOWLOG_RECORDED: &str = "obs.slowlog.recorded";
/// Slow-query entries evicted from the bounded ring (counter).
pub const OBS_SLOWLOG_EVICTED: &str = "obs.slowlog.evicted";

// --- sys: virtual introspection tables --------------------------------------
//
// The `sys` catalog exposes the obs stack as queryable relations
// (`retrieve ... from sys.<table>`). Table names are registered here so
// lint rule L2 can flag a `sys.*` literal that drifts from the catalog.

/// Virtual table: registry counters/gauges/derived/histogram quantiles.
pub const SYS_METRICS: &str = "sys.metrics";
/// Virtual table: global timeline tick deltas.
pub const SYS_TIMELINE: &str = "sys.timeline";
/// Virtual table: per-path workload statistics.
pub const SYS_WORKLOAD: &str = "sys.workload";
/// Virtual table: flight-recorder ring contents.
pub const SYS_RECORDER: &str = "sys.recorder";
/// Virtual table: per-shard buffer-pool state.
pub const SYS_POOL: &str = "sys.pool";
/// Virtual table: cost-model drift gauges.
pub const SYS_DRIFT: &str = "sys.drift";
/// Virtual table: the slow-query ring.
pub const SYS_SLOW_QUERIES: &str = "sys.slow_queries";
/// Virtual table: transaction-manager state (active txns, commits,
/// conflicts, lock waits).
pub const SYS_TXN: &str = "sys.txn";
/// Virtual table: WAL state (LSNs, appends, fsyncs, group-commit
/// coalescing, recovery results).
pub const SYS_WAL: &str = "sys.wal";

// --- core: per-path workload statistics ------------------------------------

/// Path-read accesses observed by the workload registry (counter).
pub const CORE_WORKLOAD_READS: &str = "core.workload.reads";
/// Path-update propagations observed by the workload registry (counter).
pub const CORE_WORKLOAD_UPDATES: &str = "core.workload.updates";
/// Distinct replication paths with observed traffic (gauge).
pub const CORE_WORKLOAD_PATHS: &str = "core.workload.paths";
/// Observed update probability across paths, in permille (gauge).
pub const CORE_WORKLOAD_P_UP_PERMILLE: &str = "core.workload.p_up_permille";
/// Observed propagation fan-out EWMA across paths, ×100 (gauge).
pub const CORE_WORKLOAD_FANOUT_X100: &str = "core.workload.fanout_x100";
/// Observed page touches per path read, EWMA ×100 (gauge).
pub const CORE_WORKLOAD_READ_PAGES_X100: &str = "core.workload.read_pages_x100";
/// Observed page touches per path update, EWMA ×100 (gauge).
pub const CORE_WORKLOAD_UPDATE_PAGES_X100: &str = "core.workload.update_pages_x100";

// --- core: transactions -----------------------------------------------------

/// Transactions begun (counter).
pub const TXN_BEGIN: &str = "txn.begin";
/// Transactions committed (counter).
pub const TXN_COMMIT: &str = "txn.commit";
/// Transactions aborted (counter).
pub const TXN_ABORT: &str = "txn.abort";
/// Write commits whose lock closure changed while being acquired and had
/// to be re-acquired (counter).
pub const TXN_CONFLICT: &str = "txn.conflict";
/// OID-lock acquisitions that found the lock held and had to wait
/// (counter).
pub const TXN_LOCK_WAIT: &str = "txn.lock_wait";
/// Snapshot reads re-run because a writer raced them (counter).
pub const TXN_SNAPSHOT_RETRY: &str = "txn.snapshot_retry";
/// Currently active transactions (gauge).
pub const TXN_ACTIVE: &str = "txn.active";
/// OIDs write-locked per transactional update (histogram).
pub const TXN_LOCKSET: &str = "txn.lockset";

// --- query: spans and profile operators -----------------------------------

/// Span: whole read query.
pub const QUERY_READ: &str = "query.read";
/// Span: whole update query.
pub const QUERY_UPDATE: &str = "query.update";
/// Span: projection phase.
pub const QUERY_PROJECT: &str = "query.project";
/// Profile operator: planning.
pub const OP_PLAN: &str = "plan";
/// Profile operator: deferred-propagation sync before reads.
pub const OP_SYNC: &str = "sync";
/// Profile operator: source-object fetch.
pub const OP_FETCH: &str = "fetch";
/// Profile operator: spooling the output file T.
pub const OP_SPOOL: &str = "spool";
/// Profile operator: applying update assignments.
pub const OP_APPLY: &str = "apply";
/// Profile operator: access-path prediction key (measured operators are
/// `access:<detail>`, matched by prefix).
pub const OP_ACCESS: &str = "access";
/// Profile operator: residual segment closed by `Profile::finish`.
pub const OP_OTHER: &str = "other";

// --- costmodel: conformance -----------------------------------------------

/// EXPLAIN ANALYZE invocations that recorded drift (counter).
pub const COSTMODEL_CONFORMANCE_QUERIES: &str = "costmodel.conformance.queries";
/// Prefix of the per-operator drift gauge family; suffixes come from
/// `fieldrep_costmodel::conformance::DRIFT_METRICS`.
pub const COSTMODEL_DRIFT_PREFIX: &str = "costmodel.drift.";
/// Whole-query absolute drift (gauge).
pub const COSTMODEL_DRIFT_TOTAL: &str = "costmodel.drift.total";
/// Drift gauge: planner bookkeeping.
pub const COSTMODEL_DRIFT_PLAN: &str = "costmodel.drift.plan";
/// Drift gauge: access path.
pub const COSTMODEL_DRIFT_ACCESS: &str = "costmodel.drift.access";
/// Drift gauge: deferred-propagation sync.
pub const COSTMODEL_DRIFT_SYNC: &str = "costmodel.drift.sync";
/// Drift gauge: source-object fetch.
pub const COSTMODEL_DRIFT_FETCH: &str = "costmodel.drift.fetch";
/// Drift gauge: base-field projection.
pub const COSTMODEL_DRIFT_PROJ_BASE_FIELD: &str = "costmodel.drift.proj.base-field";
/// Drift gauge: in-place replica projection.
pub const COSTMODEL_DRIFT_PROJ_INPLACE_REPLICA: &str = "costmodel.drift.proj.inplace-replica";
/// Drift gauge: separate replica projection.
pub const COSTMODEL_DRIFT_PROJ_SEPARATE_REPLICA: &str = "costmodel.drift.proj.separate-replica";
/// Drift gauge: functional-join projection.
pub const COSTMODEL_DRIFT_PROJ_FUNCTIONAL_JOIN: &str = "costmodel.drift.proj.functional-join";
/// Drift gauge: collapsed-path projection.
pub const COSTMODEL_DRIFT_PROJ_COLLAPSE: &str = "costmodel.drift.proj.collapse";
/// Drift gauge: output spool.
pub const COSTMODEL_DRIFT_SPOOL: &str = "costmodel.drift.spool";
/// Drift gauge: update apply loop.
pub const COSTMODEL_DRIFT_APPLY: &str = "costmodel.drift.apply";
/// Drift gauge: replica propagation.
pub const COSTMODEL_DRIFT_PROPAGATE: &str = "costmodel.drift.propagate";

/// The drift gauge name for a conformance metric suffix, e.g.
/// `drift_gauge("fetch")` → `"costmodel.drift.fetch"`. Call sites build
/// dynamic gauge names through this helper so the prefix stays tied to
/// the registered family.
pub fn drift_gauge(suffix: &str) -> String {
    format!("{COSTMODEL_DRIFT_PREFIX}{suffix}")
}

/// Every registered name, for exhaustiveness checks and the lint's
/// self-tests.
pub const ALL: &[&str] = &[
    STORAGE_DISK_READS,
    STORAGE_DISK_WRITES,
    STORAGE_DISK_ALLOCS,
    STORAGE_DISK_BATCH_LEN,
    STORAGE_POOL_HITS,
    STORAGE_POOL_MISSES,
    STORAGE_POOL_EVICTIONS,
    STORAGE_POOL_SHARD_CONTENTION,
    STORAGE_POOL_HIT_RATE,
    STORAGE_PREFETCH_ISSUED,
    STORAGE_PREFETCH_HIT,
    WAL_APPENDS,
    WAL_FSYNCS,
    WAL_BYTES,
    WAL_GROUP_COMMIT_COALESCED,
    WAL_REPLAYED_PAGES,
    WAL_RECOVERIES,
    WAL_AUTOCOMMITS,
    STORAGE_CHECKSUM_FAILURES,
    BTREE_SPLITS,
    BTREE_INSERT,
    BTREE_LOOKUP,
    BTREE_RANGE,
    BTREE_BULK_LOAD,
    CORE_PROPAGATE,
    CORE_PROPAGATE_INPLACE,
    CORE_PROPAGATE_SEPARATE,
    CORE_PROPAGATE_DEFERRED,
    CORE_PROPAGATE_INTERMEDIATE,
    CORE_PROPAGATE_FANOUT,
    CORE_PROPAGATE_PAGES_PER_FANOUT,
    OBS_RECORDER_EVENTS,
    OBS_RECORDER_DROPPED,
    OBS_RECORDER_DUMPS,
    OBS_RECORDER_DUMPS_SUPPRESSED,
    OBS_RECORDER_ERRORS,
    OBS_TIMELINE_TICKS,
    OBS_TIMELINE_EVICTED,
    OBS_SLOWLOG_RECORDED,
    OBS_SLOWLOG_EVICTED,
    SYS_METRICS,
    SYS_TIMELINE,
    SYS_WORKLOAD,
    SYS_RECORDER,
    SYS_POOL,
    SYS_DRIFT,
    SYS_SLOW_QUERIES,
    SYS_TXN,
    SYS_WAL,
    TXN_BEGIN,
    TXN_COMMIT,
    TXN_ABORT,
    TXN_CONFLICT,
    TXN_LOCK_WAIT,
    TXN_SNAPSHOT_RETRY,
    TXN_ACTIVE,
    TXN_LOCKSET,
    CORE_WORKLOAD_READS,
    CORE_WORKLOAD_UPDATES,
    CORE_WORKLOAD_PATHS,
    CORE_WORKLOAD_P_UP_PERMILLE,
    CORE_WORKLOAD_FANOUT_X100,
    CORE_WORKLOAD_READ_PAGES_X100,
    CORE_WORKLOAD_UPDATE_PAGES_X100,
    QUERY_READ,
    QUERY_UPDATE,
    QUERY_PROJECT,
    OP_PLAN,
    OP_SYNC,
    OP_FETCH,
    OP_SPOOL,
    OP_APPLY,
    OP_ACCESS,
    OP_OTHER,
    COSTMODEL_CONFORMANCE_QUERIES,
    COSTMODEL_DRIFT_TOTAL,
    COSTMODEL_DRIFT_PLAN,
    COSTMODEL_DRIFT_ACCESS,
    COSTMODEL_DRIFT_SYNC,
    COSTMODEL_DRIFT_FETCH,
    COSTMODEL_DRIFT_PROJ_BASE_FIELD,
    COSTMODEL_DRIFT_PROJ_INPLACE_REPLICA,
    COSTMODEL_DRIFT_PROJ_SEPARATE_REPLICA,
    COSTMODEL_DRIFT_PROJ_FUNCTIONAL_JOIN,
    COSTMODEL_DRIFT_PROJ_COLLAPSE,
    COSTMODEL_DRIFT_SPOOL,
    COSTMODEL_DRIFT_APPLY,
    COSTMODEL_DRIFT_PROPAGATE,
];

/// Is `name` registered? Exact entries match directly; names under the
/// drift prefix match when their suffix's gauge is registered.
pub fn is_registered(name: &str) -> bool {
    ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let set: HashSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len(), "duplicate entry in names::ALL");
    }

    #[test]
    fn drift_gauges_use_the_registered_prefix() {
        assert_eq!(drift_gauge("fetch"), COSTMODEL_DRIFT_FETCH);
        assert_eq!(drift_gauge("proj.collapse"), COSTMODEL_DRIFT_PROJ_COLLAPSE);
        for n in ALL {
            if let Some(suffix) = n.strip_prefix(COSTMODEL_DRIFT_PREFIX) {
                assert_eq!(drift_gauge(suffix), *n);
            }
        }
    }

    #[test]
    fn sys_tables_are_registered() {
        for t in [
            SYS_METRICS,
            SYS_TIMELINE,
            SYS_WORKLOAD,
            SYS_RECORDER,
            SYS_POOL,
            SYS_DRIFT,
            SYS_SLOW_QUERIES,
            SYS_TXN,
            SYS_WAL,
        ] {
            assert!(is_registered(t), "{t} missing from ALL");
            assert!(t.starts_with("sys."), "{t} must live under sys.");
        }
        assert!(!is_registered("sys.bogus"));
    }

    #[test]
    fn is_registered_matches_the_table() {
        assert!(is_registered("storage.pool.hits"));
        assert!(is_registered("costmodel.drift.proj.base-field"));
        assert!(!is_registered("storage.pool.hit"));
        assert!(!is_registered(""));
    }
}
