//! Metrics time-series: turn the point-in-time registry [`Snapshot`]
//! into a trajectory.
//!
//! A [`Timeline`] is ticked explicitly (typically between workload
//! phases or on a bench-suite interval). Each tick records the **delta**
//! of every registered counter and histogram since the previous tick —
//! counters in the registry are monotonic, so deltas are never negative
//! even when a storage-level profile is reset in between — plus the
//! current value of every gauge. The series is bounded: once `capacity`
//! ticks are retained, the oldest is evicted.
//!
//! Exports mirror [`crate::export`]: [`Timeline::export_jsonl`] emits one
//! self-contained `{"type":"timeline",...}` line per tick, and
//! [`Timeline::report`] renders an `obs_report` text summary (per-counter
//! totals and rates, histogram p50/p95/p99 trends).

use std::fmt::Write as _;

use crate::export::escape_json;
use crate::metrics::{registry, Registry, Snapshot};
use crate::names;
use crate::recorder::clock_nanos;

use parking_lot::Mutex;
use std::sync::OnceLock;

/// Default number of retained ticks for the global timeline.
pub const DEFAULT_CAPACITY: usize = 256;

/// Histogram movement over one tick window.
#[derive(Clone, Debug)]
pub struct HistogramTrend {
    /// Instrument name.
    pub name: String,
    /// Samples recorded during the window.
    pub count_delta: u64,
    /// Sum recorded during the window.
    pub sum_delta: u64,
    /// Median estimate at tick time (cumulative).
    pub p50: Option<u64>,
    /// 95th-percentile estimate at tick time (cumulative).
    pub p95: Option<u64>,
    /// 99th-percentile estimate at tick time (cumulative).
    pub p99: Option<u64>,
}

/// One recorded tick: deltas over the window that ended here.
#[derive(Clone, Debug)]
pub struct Tick {
    /// 0-based tick index (never reused, even after eviction).
    pub index: u64,
    /// [`clock_nanos`] timestamp at tick time.
    pub at_nanos: u64,
    /// `(name, delta)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge (current value), sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram movement, sorted by name.
    pub histograms: Vec<HistogramTrend>,
}

impl Tick {
    /// The recorded delta for counter `name` in this window (0 when the
    /// counter did not exist yet).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// A bounded in-memory series of registry snapshot deltas.
pub struct Timeline {
    capacity: usize,
    base: Option<Snapshot>,
    ticks: Vec<Tick>,
    next_index: u64,
    evicted: u64,
}

impl Timeline {
    /// A timeline retaining at most `capacity` ticks (≥ 1).
    pub fn new(capacity: usize) -> Timeline {
        Timeline {
            capacity: capacity.max(1),
            base: None,
            ticks: Vec::new(),
            next_index: 0,
            evicted: 0,
        }
    }

    /// Record one tick against `reg`: deltas since the previous tick
    /// (the first tick's window starts at zero). Returns the tick index.
    pub fn tick(&mut self, reg: &Registry) -> u64 {
        let snap = reg.snapshot();
        let tick = diff(self.next_index, self.base.as_ref(), &snap);
        self.base = Some(snap);
        self.ticks.push(tick);
        if self.ticks.len() > self.capacity {
            self.ticks.remove(0);
            self.evicted += 1;
        }
        let index = self.next_index;
        self.next_index += 1;
        index
    }

    /// The retained ticks, oldest first.
    pub fn ticks(&self) -> &[Tick] {
        &self.ticks
    }

    /// Number of ticks evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Sum of a counter's deltas across every retained tick.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.ticks.iter().map(|t| t.counter_delta(name)).sum()
    }

    /// One JSONL line per retained tick.
    pub fn export_jsonl(&self) -> Vec<String> {
        self.ticks.iter().map(tick_jsonl).collect()
    }

    /// Text summary of the retained window: totals, rates, and
    /// histogram quantile trends.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.ticks.first() else {
            let _ = writeln!(out, "obs_report: no ticks recorded");
            return out;
        };
        let Some(last) = self.ticks.last() else {
            return out;
        };
        let window_nanos = last.at_nanos.saturating_sub(first.at_nanos);
        let window_ms = window_nanos as f64 / 1e6;
        let _ = writeln!(
            out,
            "obs_report: {} tick(s) over {:.3}ms ({} evicted)",
            self.ticks.len(),
            window_ms,
            self.evicted
        );
        // Counter totals and rates over the retained window.
        let mut names: Vec<&String> = Vec::new();
        for t in &self.ticks {
            for (n, _) in &t.counters {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names.sort();
        let mut counter_lines = Vec::new();
        for name in names {
            let total = self.counter_total(name);
            if total == 0 {
                continue;
            }
            let rate = if window_ms > 0.0 {
                total as f64 / window_ms
            } else {
                0.0
            };
            counter_lines.push(format!("  {name:<42} +{total:<10} {rate:>10.1}/ms"));
        }
        if !counter_lines.is_empty() {
            let _ = writeln!(out, "counters (delta over window, rate):");
            for l in counter_lines {
                let _ = writeln!(out, "{l}");
            }
        }
        // Last-tick gauge values.
        if !last.gauges.is_empty() {
            let _ = writeln!(out, "gauges (latest):");
            for (name, value) in &last.gauges {
                let _ = writeln!(out, "  {name:<42} {value}");
            }
        }
        // Histogram quantile trends: first tick vs last tick.
        let mut hist_lines = Vec::new();
        for h in &last.histograms {
            let moved: u64 = self
                .ticks
                .iter()
                .flat_map(|t| &t.histograms)
                .filter(|x| x.name == h.name)
                .map(|x| x.count_delta)
                .sum();
            if moved == 0 {
                continue;
            }
            let q = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            let start = first.histograms.iter().find(|x| x.name == h.name);
            let trend = |f: fn(&HistogramTrend) -> Option<u64>| {
                format!("{}→{}", q(start.and_then(f)), q(f(h)))
            };
            hist_lines.push(format!(
                "  {:<42} n=+{moved} p50={} p95={} p99={}",
                h.name,
                trend(|x| x.p50),
                trend(|x| x.p95),
                trend(|x| x.p99),
            ));
        }
        if !hist_lines.is_empty() {
            let _ = writeln!(out, "histograms (samples over window, quantile trend):");
            for l in hist_lines {
                let _ = writeln!(out, "{l}");
            }
        }
        out
    }
}

/// Compute one tick's deltas from `base` (None = zero) to `snap`.
fn diff(index: u64, base: Option<&Snapshot>, snap: &Snapshot) -> Tick {
    let base_counter = |name: &str| -> u64 {
        base.and_then(|b| b.counters.iter().find(|(n, _)| n == name))
            .map_or(0, |(_, v)| *v)
    };
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), v.saturating_sub(base_counter(n))))
        .collect();
    let gauges = snap.gauges.clone();
    let histograms = snap
        .histograms
        .iter()
        .map(|h| {
            let (bc, bs) = base
                .and_then(|b| b.histograms.iter().find(|x| x.name == h.name))
                .map_or((0, 0), |x| (x.count, x.sum));
            HistogramTrend {
                name: h.name.clone(),
                count_delta: h.count.saturating_sub(bc),
                sum_delta: h.sum.saturating_sub(bs),
                p50: h.p50,
                p95: h.p95,
                p99: h.p99,
            }
        })
        .collect();
    Tick {
        index,
        at_nanos: clock_nanos(),
        counters,
        gauges,
        histograms,
    }
}

/// One JSONL line for a tick.
pub fn tick_jsonl(t: &Tick) -> String {
    let kv_u = |pairs: &[(String, u64)]| {
        pairs
            .iter()
            .map(|(n, v)| format!("\"{}\":{v}", escape_json(n)))
            .collect::<Vec<_>>()
            .join(",")
    };
    let gauges = t
        .gauges
        .iter()
        .map(|(n, v)| format!("\"{}\":{v}", escape_json(n)))
        .collect::<Vec<_>>()
        .join(",");
    let q = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let hists = t
        .histograms
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":\"{}\",\"count_delta\":{},\"sum_delta\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                escape_json(&h.name),
                h.count_delta,
                h.sum_delta,
                q(h.p50),
                q(h.p95),
                q(h.p99)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"type\":\"timeline\",\"tick\":{},\"at_nanos\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":[{}]}}",
        t.index,
        t.at_nanos,
        kv_u(&t.counters),
        gauges,
        hists
    )
}

fn global_timeline() -> &'static Mutex<Timeline> {
    static GLOBAL: OnceLock<Mutex<Timeline>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Timeline::new(DEFAULT_CAPACITY)))
}

/// Tick the global timeline against the global registry; returns the
/// tick index. Maintains the `obs.timeline.*` counters.
pub fn global_tick() -> u64 {
    let reg = registry();
    let ticks = reg.counter(names::OBS_TIMELINE_TICKS);
    let evicted_c = reg.counter(names::OBS_TIMELINE_EVICTED);
    let mut t = global_timeline().lock();
    let before = t.evicted();
    let idx = t.tick(reg);
    ticks.inc();
    evicted_c.add(t.evicted() - before);
    idx
}

/// JSONL export of the global timeline's retained ticks.
pub fn global_export_jsonl() -> Vec<String> {
    global_timeline().lock().export_jsonl()
}

/// `obs_report` text summary of the global timeline.
pub fn global_report() -> String {
    global_timeline().lock().report()
}

/// Run `f` with the global timeline locked (read helpers for tests and
/// binaries that need more than the canned exports).
pub fn with_global<R>(f: impl FnOnce(&Timeline) -> R) -> R {
    f(&global_timeline().lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_window_between_ticks() {
        let r = Registry::default();
        let c = r.counter("t.tl.count");
        let mut tl = Timeline::new(8);
        c.add(5);
        tl.tick(&r);
        c.add(3);
        tl.tick(&r);
        tl.tick(&r);
        let ticks = tl.ticks();
        assert_eq!(ticks.len(), 3);
        assert_eq!(ticks[0].counter_delta("t.tl.count"), 5);
        assert_eq!(ticks[1].counter_delta("t.tl.count"), 3);
        assert_eq!(ticks[2].counter_delta("t.tl.count"), 0);
        assert_eq!(tl.counter_total("t.tl.count"), 8, "deltas telescope");
        assert!(ticks.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
    }

    #[test]
    fn series_is_bounded_and_counts_evictions() {
        let r = Registry::default();
        let c = r.counter("t.tl.bounded");
        let mut tl = Timeline::new(2);
        for _ in 0..5 {
            c.inc();
            tl.tick(&r);
        }
        assert_eq!(tl.ticks().len(), 2);
        assert_eq!(tl.evicted(), 3);
        assert_eq!(tl.ticks()[0].index, 3, "oldest retained tick is #3");
        assert_eq!(tl.ticks()[1].index, 4);
    }

    #[test]
    fn gauges_report_current_values_not_deltas() {
        let r = Registry::default();
        let g = r.gauge("t.tl.gauge");
        let mut tl = Timeline::new(4);
        g.set(10);
        tl.tick(&r);
        g.set(7);
        tl.tick(&r);
        assert_eq!(tl.ticks()[0].gauges, vec![("t.tl.gauge".to_string(), 10)]);
        assert_eq!(tl.ticks()[1].gauges, vec![("t.tl.gauge".to_string(), 7)]);
    }

    #[test]
    fn histogram_trends_carry_count_deltas_and_quantiles() {
        let r = Registry::default();
        let h = r.histogram("t.tl.hist", &[1, 4, 16]);
        let mut tl = Timeline::new(4);
        h.record(1);
        h.record(2);
        tl.tick(&r);
        h.record(16);
        tl.tick(&r);
        let t0 = &tl.ticks()[0].histograms[0];
        assert_eq!(t0.count_delta, 2);
        assert_eq!(t0.sum_delta, 3);
        let t1 = &tl.ticks()[1].histograms[0];
        assert_eq!(t1.count_delta, 1);
        assert_eq!(t1.sum_delta, 16);
        assert_eq!(t1.p99, Some(16));
    }

    #[test]
    fn jsonl_and_report_render() {
        let r = Registry::default();
        r.counter("t.tl.render").add(2);
        r.gauge("t.tl.g").set(-3);
        r.histogram("t.tl.h", &[1, 2]).record(2);
        let mut tl = Timeline::new(4);
        tl.tick(&r);
        let lines = tl.export_jsonl();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"type\":\"timeline\""));
        assert!(lines[0].contains("\"t.tl.render\":2"));
        assert!(lines[0].contains("\"t.tl.g\":-3"));
        assert!(lines[0].contains("\"count_delta\":1"));
        let report = tl.report();
        assert!(report.contains("obs_report: 1 tick(s)"));
        assert!(report.contains("t.tl.render"));
        assert!(report.contains("t.tl.g"));
        assert!(report.contains("t.tl.h"));
        assert!(Timeline::new(1).report().contains("no ticks recorded"));
    }
}
