//! Exporters: human-readable text and JSON lines.
//!
//! The JSON-lines format emits one self-contained object per line:
//! `{"type":"span",...}` (children nested inline), `{"type":"profile",...}`,
//! and one line per registry instrument
//! (`{"type":"counter"|"gauge"|"histogram",...}`). Lines are valid JSON
//! produced by a tiny built-in writer — no external serializer.

use std::fmt::Write as _;

use crate::io::IoCounts;
use crate::metrics::Snapshot;
use crate::profile::Profile;
use crate::span::SpanNode;

/// Version of the JSON-lines format emitted by this module. Bump when a
/// line type changes shape; consumers should check the `run` header line.
///
/// v2 added the flight-recorder (`recorder_dump`/`recorder_event`) and
/// timeline (`timeline`) line types. v3 added the slow-query log
/// (`slowlog_dump`/`slow_query`) line types and the `start_nanos` field
/// on `span` lines.
pub const JSONL_SCHEMA_VERSION: u32 = 3;

/// Header line stamping a JSONL stream with the format version and a
/// caller-supplied run identifier, so streams from different runs stay
/// distinguishable after concatenation.
pub fn run_meta_jsonl(run_id: &str) -> String {
    format!(
        "{{\"type\":\"run\",\"schema_version\":{},\"run_id\":\"{}\"}}",
        JSONL_SCHEMA_VERSION,
        escape_json(run_id)
    )
}

/// Escape `s` as JSON string contents (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn io_json(io: &IoCounts) -> String {
    format!(
        "{{\"disk_reads\":{},\"disk_writes\":{},\"disk_allocs\":{},\"pool_hits\":{},\"pool_misses\":{},\"evictions\":{}}}",
        io.disk_reads, io.disk_writes, io.disk_allocs, io.pool_hits, io.pool_misses, io.evictions
    )
}

/// Compact one-line rendering of a set of I/O counters.
pub fn io_text(io: &IoCounts) -> String {
    format!(
        "rd={} wr={} alloc={} hit={} miss={} evict={}",
        io.disk_reads, io.disk_writes, io.disk_allocs, io.pool_hits, io.pool_misses, io.evictions
    )
}

fn span_json(node: &SpanNode) -> String {
    let notes = node
        .notes
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect::<Vec<_>>()
        .join(",");
    let children = node
        .children
        .iter()
        .map(span_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"name\":\"{}\",\"start_nanos\":{},\"nanos\":{},\"io\":{},\"notes\":{{{}}},\"children\":[{}]}}",
        escape_json(&node.name),
        node.start_nanos,
        node.nanos,
        io_json(&node.io),
        notes,
        children
    )
}

/// One JSON line for a root span (children nested inline).
pub fn span_jsonl(node: &SpanNode) -> String {
    format!("{{\"type\":\"span\",\"span\":{}}}", span_json(node))
}

/// One JSON line for a finished [`Profile`].
pub fn profile_jsonl(label: &str, profile: &Profile) -> String {
    let ops = profile
        .ops
        .iter()
        .map(|op| {
            format!(
                "{{\"name\":\"{}\",\"nanos\":{},\"io\":{}}}",
                escape_json(&op.name),
                op.nanos,
                io_json(&op.io)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"type\":\"profile\",\"label\":\"{}\",\"total_nanos\":{},\"total_io\":{},\"ops\":[{}]}}",
        escape_json(label),
        profile.total_nanos,
        io_json(&profile.total_io),
        ops
    )
}

/// JSON lines for a registry [`Snapshot`]: one line per instrument.
pub fn snapshot_jsonl(snap: &Snapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, value) in &snap.counters {
        lines.push(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        ));
    }
    for (name, value) in &snap.gauges {
        lines.push(format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        ));
    }
    for (name, value) in &snap.derived {
        lines.push(format!(
            "{{\"type\":\"derived\",\"name\":\"{}\",\"value\":{value:.6}}}",
            escape_json(name),
        ));
    }
    for h in &snap.histograms {
        let q = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        let bounds = h
            .bounds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let buckets = h
            .buckets
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        lines.push(format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"mean\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"bounds\":[{}],\"buckets\":[{}]}}",
            escape_json(&h.name),
            h.count,
            h.sum,
            h.mean,
            h.max,
            q(h.p50),
            q(h.p95),
            q(h.p99),
            bounds,
            buckets
        ));
    }
    lines
}

// ---- Chrome-trace ("Trace Event Format") export ---------------------------

/// Microsecond timestamp with nanosecond fractional precision, as the
/// Trace Event Format's `ts` field expects.
fn chrome_ts(nanos: u128) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Emit one span subtree as `B`/`E` duration events, depth-first.
///
/// `cursor` is the last emitted timestamp: every event is clamped to be
/// at or after it, so the produced stream is monotone per thread even
/// when sibling clock reads land nanoseconds out of order. All events
/// share `pid:1`/`tid:1` — the engine executes a profiled run on one
/// thread, and the span tree is per-thread to begin with.
fn chrome_events(node: &SpanNode, cursor: &mut u128, out: &mut Vec<String>) {
    let start = u128::from(node.start_nanos).max(*cursor);
    let end = start + node.nanos;
    let notes = node
        .notes
        .iter()
        .map(|(k, v)| format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect::<String>();
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{{\"io\":{}{notes}}}}}",
        escape_json(&node.name),
        chrome_ts(start),
        io_json(&node.io)
    ));
    *cursor = start;
    for child in &node.children {
        chrome_events(child, cursor, out);
    }
    let end = end.max(*cursor);
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":1}}",
        escape_json(&node.name),
        chrome_ts(end)
    ));
    *cursor = end;
}

/// Render root spans as one Chrome-trace/Perfetto JSON document
/// (`{"traceEvents":[...]}`), loadable by `chrome://tracing` and
/// [ui.perfetto.dev](https://ui.perfetto.dev). Each span becomes a
/// balanced `B`/`E` duration-event pair on the shared telemetry clock,
/// with its attributed page I/O and notes in `args`.
pub fn chrome_trace_json(spans: &[SpanNode]) -> String {
    let mut events = Vec::new();
    let mut cursor = 0u128;
    for root in spans {
        chrome_events(root, &mut cursor, &mut events);
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

fn span_text_into(node: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let notes = if node.notes.is_empty() {
        String::new()
    } else {
        let body = node
            .notes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!("  [{body}]")
    };
    let _ = writeln!(
        out,
        "{indent}{:<width$} {:>9.3}ms  {}{notes}",
        node.name,
        node.nanos as f64 / 1e6,
        io_text(&node.io),
        width = 28usize.saturating_sub(indent.len()).max(12),
    );
    for child in &node.children {
        span_text_into(child, depth + 1, out);
    }
}

/// Render a span tree as indented text, one line per span.
pub fn span_text(node: &SpanNode) -> String {
    let mut out = String::new();
    span_text_into(node, 0, &mut out);
    out
}

/// Render a finished [`Profile`] as an `EXPLAIN ANALYZE`-style table.
pub fn profile_text(label: &str, profile: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {label}  ({:.3}ms, {})",
        profile.total_nanos as f64 / 1e6,
        io_text(&profile.total_io)
    );
    let _ = writeln!(
        out,
        "  {:<38} {:>10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "operator", "ms", "rd", "wr", "alloc", "hit", "miss", "evict"
    );
    for op in &profile.ops {
        let _ = writeln!(
            out,
            "  {:<38} {:>10.3} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            op.name,
            op.nanos as f64 / 1e6,
            op.io.disk_reads,
            op.io.disk_writes,
            op.io.disk_allocs,
            op.io.pool_hits,
            op.io.pool_misses,
            op.io.evictions
        );
    }
    out
}

/// Render a registry [`Snapshot`] as text.
pub fn snapshot_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<42} {value}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name:<42} {value}");
        }
    }
    if !snap.derived.is_empty() {
        let _ = writeln!(out, "derived:");
        for (name, value) in &snap.derived {
            let _ = writeln!(out, "  {name:<42} {value:.4}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for h in &snap.histograms {
            let q = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            let _ = writeln!(
                out,
                "  {:<42} n={} mean={:.2} p50={} p95={} p99={} max={}",
                h.name,
                h.count,
                h.mean,
                q(h.p50),
                q(h.p95),
                q(h.p99),
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoCounts;
    use crate::metrics::Registry;
    use crate::profile::Profile;
    use crate::span::{set_tracing, take_finished, Span};

    /// Minimal JSON validity checker: strings/escapes, numbers, null,
    /// objects, arrays. Returns true iff `s` is one complete JSON value.
    fn is_valid_json(s: &str) -> bool {
        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> bool {
            skip_ws(b, i);
            if *i >= b.len() {
                return false;
            }
            match b[*i] {
                b'{' => {
                    *i += 1;
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b'}' {
                        *i += 1;
                        return true;
                    }
                    loop {
                        skip_ws(b, i);
                        if !string(b, i) {
                            return false;
                        }
                        skip_ws(b, i);
                        if *i >= b.len() || b[*i] != b':' {
                            return false;
                        }
                        *i += 1;
                        if !value(b, i) {
                            return false;
                        }
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return true;
                            }
                            _ => return false,
                        }
                    }
                }
                b'[' => {
                    *i += 1;
                    skip_ws(b, i);
                    if *i < b.len() && b[*i] == b']' {
                        *i += 1;
                        return true;
                    }
                    loop {
                        if !value(b, i) {
                            return false;
                        }
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return true;
                            }
                            _ => return false,
                        }
                    }
                }
                b'"' => string(b, i),
                b'n' => literal(b, i, b"null"),
                b't' => literal(b, i, b"true"),
                b'f' => literal(b, i, b"false"),
                _ => number(b, i),
            }
        }
        fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
            if b[*i..].starts_with(lit) {
                *i += lit.len();
                true
            } else {
                false
            }
        }
        fn string(b: &[u8], i: &mut usize) -> bool {
            if *i >= b.len() || b[*i] != b'"' {
                return false;
            }
            *i += 1;
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return true;
                    }
                    b'\\' => *i += 2,
                    c if c < 0x20 => return false,
                    _ => *i += 1,
                }
            }
            false
        }
        fn number(b: &[u8], i: &mut usize) -> bool {
            let start = *i;
            if *i < b.len() && b[*i] == b'-' {
                *i += 1;
            }
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            *i > start
        }
        let b = s.as_bytes();
        let mut i = 0;
        if !value(b, &mut i) {
            return false;
        }
        skip_ws(b, &mut i);
        i == b.len()
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert!(is_valid_json(&format!(
            "\"{}\"",
            escape_json("x\"\\\n\t\r\u{2}y")
        )));
    }

    #[test]
    fn span_jsonl_is_valid_json() {
        set_tracing(true);
        take_finished();
        {
            let root = Span::enter("query.\"odd\" name");
            root.note("k", "v with \"quotes\"");
            let _child = root.child("inner");
        }
        let spans = take_finished();
        set_tracing(false);
        let line = span_jsonl(&spans[0]);
        assert!(is_valid_json(&line), "invalid: {line}");
        assert!(line.contains("\"type\":\"span\""));
        assert!(line.contains("\"children\":[{"));
    }

    #[test]
    fn profile_and_snapshot_jsonl_are_valid_json() {
        let mut p = Profile::start();
        crate::io::record_pool_hit();
        p.mark("access");
        let p = p.finish();
        let line = profile_jsonl("read q", &p);
        assert!(is_valid_json(&line), "invalid: {line}");

        let r = Registry::default();
        r.counter("c.a").add(3);
        r.gauge("g.b").set(-7);
        r.histogram("h.c", &[1, 4, 16]).record(5);
        for line in snapshot_jsonl(&r.snapshot()) {
            assert!(is_valid_json(&line), "invalid: {line}");
        }
        assert_eq!(snapshot_jsonl(&r.snapshot()).len(), 3);
    }

    #[test]
    fn run_meta_line_carries_schema_version_and_run_id() {
        let line = run_meta_jsonl("bench \"42\"");
        assert!(is_valid_json(&line), "invalid: {line}");
        assert!(line.contains("\"type\":\"run\""));
        assert!(line.contains(&format!("\"schema_version\":{JSONL_SCHEMA_VERSION}")));
        assert!(line.contains("bench \\\"42\\\""));
    }

    #[test]
    fn derived_ratios_appear_in_both_exporters() {
        let r = Registry::default();
        r.counter("storage.pool.hits").add(9);
        r.counter("storage.pool.misses").add(1);
        let snap = r.snapshot();
        let lines = snapshot_jsonl(&snap);
        let derived: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"type\":\"derived\""))
            .collect();
        assert_eq!(derived.len(), 1);
        assert!(derived[0].contains("storage.pool.hit_rate"));
        assert!(derived[0].contains("0.900000"));
        assert!(is_valid_json(derived[0]));

        let text = snapshot_text(&snap);
        assert!(text.contains("derived:"));
        assert!(text.contains("storage.pool.hit_rate"));
        assert!(text.contains("0.9000"));
    }

    fn trace_ts_values(doc: &str) -> Vec<f64> {
        doc.split("\"ts\":")
            .skip(1)
            .map(|rest| {
                let end = rest.find(',').expect("ts is followed by more fields");
                rest[..end].parse::<f64>().expect("ts parses as a number")
            })
            .collect()
    }

    #[test]
    fn chrome_trace_is_valid_balanced_and_monotone() {
        set_tracing(true);
        take_finished();
        {
            let root = Span::enter("trace.root");
            {
                let a = root.child("trace.a");
                a.note("rows", 3);
            }
            let _b = root.child("trace.b");
        }
        let spans = take_finished();
        set_tracing(false);
        let doc = chrome_trace_json(&spans);
        assert!(is_valid_json(&doc), "invalid: {doc}");
        assert!(doc.contains("\"traceEvents\""));
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 3);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 3);
        assert!(doc.contains("\"rows\":\"3\""), "notes land in args");
        let ts = trace_ts_values(&doc);
        assert_eq!(ts.len(), 6);
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "timestamps are monotone in emission order: {ts:?}"
        );
    }

    #[test]
    fn chrome_trace_clamps_out_of_order_clock_reads() {
        // A child whose recorded start precedes its parent's (possible
        // only through clock-read skew) must still produce a monotone,
        // properly nested stream.
        let child = crate::span::SpanNode {
            name: "c".into(),
            start_nanos: 5,
            nanos: 10_000_000,
            io: IoCounts::default(),
            notes: vec![],
            children: vec![],
        };
        let root = crate::span::SpanNode {
            name: "r".into(),
            start_nanos: 1_000,
            nanos: 2_000,
            io: IoCounts::default(),
            notes: vec![],
            children: vec![child],
        };
        let doc = chrome_trace_json(&[root]);
        assert!(is_valid_json(&doc), "invalid: {doc}");
        let ts = trace_ts_values(&doc);
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "clamped stream is monotone: {ts:?}"
        );
        assert!(chrome_trace_json(&[]).contains("\"traceEvents\":[]"));
    }

    #[test]
    fn text_renderers_contain_the_key_facts() {
        let mut p = Profile::start();
        crate::io::record_disk_read();
        p.mark("access:index-range");
        let p = p.finish();
        let text = profile_text("q1", &p);
        assert!(text.contains("access:index-range"));
        assert!(text.contains("operator"));

        let node = crate::span::SpanNode {
            name: "root".into(),
            start_nanos: 0,
            nanos: 1_500_000,
            io: IoCounts {
                disk_reads: 2,
                ..Default::default()
            },
            notes: vec![("rows".into(), "9".into())],
            children: vec![],
        };
        let text = span_text(&node);
        assert!(text.contains("root"));
        assert!(text.contains("rd=2"));
        assert!(text.contains("rows=9"));
    }
}
