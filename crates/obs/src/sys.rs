//! The `sys` catalog: the obs stack as queryable relations.
//!
//! Each virtual table is a [`TableDef`] (name + column list, both from
//! the central [`names`] registry) and a row builder that materialises a
//! point-in-time snapshot of the corresponding obs structure as
//! [`SysRow`]s. Row builders do **zero page I/O** — they only read
//! in-memory telemetry state — so the virtual-scan plan operator built
//! on top of them cannot perturb the profile invariant that operator I/O
//! sums to pool totals.
//!
//! Three tables (`sys.pool`, `sys.workload`, `sys.txn`) describe
//! per-database state the obs crate cannot see; their [`TableDef`]s live
//! here so the catalog is complete, but their rows are produced by the
//! query layer.

use crate::metrics::registry;
use crate::names;
use crate::recorder::{self, EventKind};
use crate::slowlog;
use crate::timeline;

/// One cell of a virtual-table row.
#[derive(Clone, Debug, PartialEq)]
pub enum SysValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
}

/// One row: a cell per column, `None` = NULL.
pub type SysRow = Vec<Option<SysValue>>;

/// A virtual table: its registered name and column list.
#[derive(Clone, Copy, Debug)]
pub struct TableDef {
    /// Table name, e.g. `"sys.metrics"` (always a [`names`] constant).
    pub name: &'static str,
    /// Column names, in row order.
    pub columns: &'static [&'static str],
}

/// Every virtual table in the `sys` catalog.
pub const TABLES: &[TableDef] = &[
    TableDef {
        name: names::SYS_METRICS,
        columns: &[
            "kind", "name", "value", "count", "sum", "mean", "max", "p50", "p95", "p99",
        ],
    },
    TableDef {
        name: names::SYS_TIMELINE,
        columns: &[
            "tick",
            "at_nanos",
            "kind",
            "name",
            "value",
            "count_delta",
            "sum_delta",
            "p50",
            "p95",
            "p99",
        ],
    },
    TableDef {
        name: names::SYS_WORKLOAD,
        columns: &[
            "path",
            "reads",
            "updates",
            "p_up",
            "fanout_ewma",
            "read_pages_ewma",
            "update_pages_ewma",
        ],
    },
    TableDef {
        name: names::SYS_RECORDER,
        columns: &[
            "seq",
            "at_nanos",
            "name",
            "event",
            "nanos",
            "disk_reads",
            "disk_writes",
            "pool_hits",
            "pool_misses",
            "message",
        ],
    },
    TableDef {
        name: names::SYS_POOL,
        columns: &["shard", "frames", "resident", "dirty", "pinned"],
    },
    TableDef {
        name: names::SYS_DRIFT,
        columns: &["name", "drift"],
    },
    TableDef {
        name: names::SYS_SLOW_QUERIES,
        columns: &[
            "seq",
            "at_nanos",
            "statement",
            "plan",
            "wall_nanos",
            "io_pages",
            "rows",
            "ops",
        ],
    },
    // Database-backed (rows built by the query layer from the
    // database's transaction manager): one (counter, value) row per
    // concurrency statistic.
    TableDef {
        name: names::SYS_TXN,
        columns: &["counter", "value"],
    },
    // Database-backed: one (counter, value) row per WAL/recovery
    // statistic from the database's storage manager.
    TableDef {
        name: names::SYS_WAL,
        columns: &["counter", "value"],
    },
];

/// Look up a table by its full name (`"sys.metrics"`).
pub fn table(name: &str) -> Option<&'static TableDef> {
    TABLES.iter().find(|t| t.name == name)
}

fn int(v: u64) -> Option<SysValue> {
    Some(SysValue::Int(v.min(i64::MAX as u64) as i64))
}

fn opt_int(v: Option<u64>) -> Option<SysValue> {
    v.and_then(int)
}

fn s(v: &str) -> Option<SysValue> {
    Some(SysValue::Str(v.to_string()))
}

/// `sys.metrics` rows: the same registry [`Snapshot`](crate::metrics::Snapshot)
/// the JSONL exporter serialises, one row per instrument. Counters,
/// gauges, and derived ratios fill `value` (histogram columns NULL);
/// histograms fill the distribution columns (`value` NULL).
pub fn metrics_rows() -> Vec<SysRow> {
    let snap = registry().snapshot();
    let mut rows = Vec::new();
    for (name, value) in &snap.counters {
        let mut row = vec![s("counter"), s(name), int(*value)];
        row.resize(10, None);
        rows.push(row);
    }
    for (name, value) in &snap.gauges {
        let mut row = vec![s("gauge"), s(name), Some(SysValue::Int(*value))];
        row.resize(10, None);
        rows.push(row);
    }
    for (name, value) in &snap.derived {
        let mut row = vec![s("derived"), s(name), Some(SysValue::Float(*value))];
        row.resize(10, None);
        rows.push(row);
    }
    for h in &snap.histograms {
        rows.push(vec![
            s("histogram"),
            s(&h.name),
            None,
            int(h.count),
            int(h.sum),
            Some(SysValue::Float(h.mean)),
            int(h.max),
            opt_int(h.p50),
            opt_int(h.p95),
            opt_int(h.p99),
        ]);
    }
    rows
}

/// `sys.timeline` rows: the global timeline's retained ticks, flattened
/// to one row per (tick, instrument). Counter rows carry the window
/// delta in `value`; gauge rows the current value; histogram rows the
/// window movement and cumulative quantiles.
pub fn timeline_rows() -> Vec<SysRow> {
    timeline::with_global(|tl| {
        let mut rows = Vec::new();
        for t in tl.ticks() {
            let head =
                |kind: &str, name: &str| vec![int(t.index), int(t.at_nanos), s(kind), s(name)];
            for (name, delta) in &t.counters {
                let mut row = head("counter", name);
                row.push(int(*delta));
                row.resize(10, None);
                rows.push(row);
            }
            for (name, value) in &t.gauges {
                let mut row = head("gauge", name);
                row.push(Some(SysValue::Int(*value)));
                row.resize(10, None);
                rows.push(row);
            }
            for h in &t.histograms {
                let mut row = head("histogram", &h.name);
                row.push(None);
                row.push(int(h.count_delta));
                row.push(int(h.sum_delta));
                row.push(opt_int(h.p50));
                row.push(opt_int(h.p95));
                row.push(opt_int(h.p99));
                rows.push(row);
            }
        }
        rows
    })
}

/// `sys.recorder` rows: the flight-recorder ring, oldest first.
pub fn recorder_rows() -> Vec<SysRow> {
    recorder::global()
        .events()
        .iter()
        .map(|e| {
            let mut row = vec![int(e.seq), int(e.at_nanos), s(e.name)];
            match &e.kind {
                EventKind::SpanEnter => {
                    row.push(s("span_enter"));
                    row.resize(10, None);
                }
                EventKind::SpanExit { nanos, io } => {
                    row.push(s("span_exit"));
                    row.push(int(*nanos));
                    row.push(int(io.disk_reads));
                    row.push(int(io.disk_writes));
                    row.push(int(io.pool_hits));
                    row.push(int(io.pool_misses));
                    row.push(None);
                }
                EventKind::IoDelta { io } => {
                    row.push(s("io_delta"));
                    row.push(None);
                    row.push(int(io.disk_reads));
                    row.push(int(io.disk_writes));
                    row.push(int(io.pool_hits));
                    row.push(int(io.pool_misses));
                    row.push(None);
                }
                EventKind::Error { message } => {
                    row.push(s("error"));
                    row.resize(9, None);
                    row.push(s(message));
                }
            }
            row
        })
        .collect()
}

/// `sys.drift` rows: every `costmodel.drift.*` gauge in the registry.
pub fn drift_rows() -> Vec<SysRow> {
    registry()
        .snapshot()
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with(names::COSTMODEL_DRIFT_PREFIX))
        .map(|(name, value)| vec![s(name), Some(SysValue::Int(*value))])
        .collect()
}

/// `sys.slow_queries` rows: the slow-query ring, oldest first. The
/// `ops` column is a compact per-operator summary
/// (`name=<page touches> ...`); the full profile is available through
/// [`slowlog::entries`].
pub fn slow_query_rows() -> Vec<SysRow> {
    slowlog::entries()
        .iter()
        .map(|e| {
            let ops = e
                .profile
                .ops
                .iter()
                .map(|op| format!("{}={}", op.name, op.io.page_touches()))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                int(e.seq),
                int(e.at_nanos),
                s(&e.statement),
                s(&e.plan),
                int(e.wall_nanos),
                int(e.io_pages),
                int(e.rows),
                s(&ops),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_registered_and_columns_unique() {
        for t in TABLES {
            assert!(names::is_registered(t.name), "{} unregistered", t.name);
            let mut cols: Vec<&str> = t.columns.to_vec();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), t.columns.len(), "{} has dup columns", t.name);
        }
        assert!(table(names::SYS_METRICS).is_some());
        assert!(table("sys.nope").is_none());
    }

    #[test]
    fn metrics_rows_are_width_consistent_and_cover_the_registry() {
        let r = registry();
        r.counter(names::OBS_RECORDER_EVENTS);
        let width = table(names::SYS_METRICS)
            .map(|t| t.columns.len())
            .unwrap_or_default();
        let rows = metrics_rows();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|row| row.len() == width));
        let snap = r.snapshot();
        let expected =
            snap.counters.len() + snap.gauges.len() + snap.derived.len() + snap.histograms.len();
        // The registry only grows, so a concurrent test thread can add
        // instruments between the two snapshots — never remove them.
        assert!(rows.len() >= expected.min(rows.len()));
        let kinds: Vec<&SysValue> = rows.iter().filter_map(|r| r[0].as_ref()).collect();
        assert!(kinds.contains(&&SysValue::Str("counter".into())));
    }

    #[test]
    fn recorder_rows_mirror_ring_events() {
        recorder::record("t.sys.rec", EventKind::SpanEnter);
        let rows = recorder_rows();
        let width = table(names::SYS_RECORDER)
            .map(|t| t.columns.len())
            .unwrap_or_default();
        assert!(rows.iter().all(|row| row.len() == width));
        assert!(rows
            .iter()
            .any(|row| row[2] == Some(SysValue::Str("t.sys.rec".into()))));
    }

    #[test]
    fn timeline_rows_flatten_ticks() {
        registry().counter(names::OBS_TIMELINE_TICKS);
        timeline::global_tick();
        let width = table(names::SYS_TIMELINE)
            .map(|t| t.columns.len())
            .unwrap_or_default();
        let rows = timeline_rows();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|row| row.len() == width));
    }
}
