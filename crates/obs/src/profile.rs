//! `EXPLAIN ANALYZE`-style per-operator profiles.
//!
//! A [`Profile`] carves a query's execution into contiguous **segments**:
//! [`Profile::start`] snapshots the thread-local I/O counts, each
//! [`Profile::mark`] closes the segment since the previous mark (or the
//! start) under an operator name, and [`Profile::finish`] closes any
//! residual as `"other"` and records the totals. Because segments
//! telescope over one uninterrupted counter stream, the per-operator
//! I/O deltas sum **exactly** to the profile's total — the invariant the
//! bench harness asserts against the raw storage `IoProfile`.
//!
//! [`Profile::split_last`] lets a caller carve a lower layer's
//! contribution (accumulated via
//! [`io::component_add`](crate::io::component_add)) out of the segment it
//! happened inside, preserving the sum.

use std::time::Instant;

use crate::io::{self, IoCounts};

/// I/O and wall time attributed to one plan operator.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Operator label, e.g. `"access:index-range(R.field_r)"`.
    pub name: String,
    /// Page-I/O delta for this operator's segment.
    pub io: IoCounts,
    /// Wall-clock nanoseconds for this operator's segment.
    pub nanos: u128,
}

/// A per-operator breakdown of one query execution. See the
/// [module docs](self) for the telescoping-segment construction.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Per-operator segments, in execution order.
    pub ops: Vec<OpProfile>,
    /// Total I/O delta from [`Profile::start`] to [`Profile::finish`].
    pub total_io: IoCounts,
    /// Total wall-clock nanoseconds.
    pub total_nanos: u128,
    start_io: IoCounts,
    start_t: Instant,
    last_io: IoCounts,
    last_t: Instant,
}

impl Profile {
    /// Begin profiling: snapshot this thread's I/O counts and the clock.
    pub fn start() -> Profile {
        let now = Instant::now();
        let snap = io::snapshot();
        Profile {
            ops: Vec::new(),
            total_io: IoCounts::default(),
            total_nanos: 0,
            start_io: snap,
            start_t: now,
            last_io: snap,
            last_t: now,
        }
    }

    /// Close the segment since the previous mark under `name`.
    ///
    /// Zero-I/O segments are still recorded: a plan operator that did no
    /// page I/O is information, not noise.
    pub fn mark(&mut self, name: impl Into<String>) {
        let now = Instant::now();
        let snap = io::snapshot();
        self.ops.push(OpProfile {
            name: name.into(),
            io: snap - self.last_io,
            nanos: now.duration_since(self.last_t).as_nanos(),
        });
        self.last_io = snap;
        self.last_t = now;
    }

    /// Split `carve` out of the most recent segment into its own
    /// operator named `name`, keeping the per-operator sum intact.
    ///
    /// Used to attribute work a lower layer did *inside* the last
    /// segment (e.g. replica propagation inside `"apply"`). The carved
    /// I/O is clamped to the segment's own delta; wall time is
    /// apportioned by the carved share of the segment's page touches.
    pub fn split_last(&mut self, name: impl Into<String>, carve: IoCounts) {
        let Some(last) = self.ops.last_mut() else {
            return;
        };
        let carve = IoCounts {
            disk_reads: carve.disk_reads.min(last.io.disk_reads),
            disk_writes: carve.disk_writes.min(last.io.disk_writes),
            disk_allocs: carve.disk_allocs.min(last.io.disk_allocs),
            pool_hits: carve.pool_hits.min(last.io.pool_hits),
            pool_misses: carve.pool_misses.min(last.io.pool_misses),
            evictions: carve.evictions.min(last.io.evictions),
        };
        if carve.is_zero() {
            return;
        }
        let touches = last.io.page_touches().max(1);
        let carved_nanos = (last.nanos * carve.page_touches() as u128) / touches as u128;
        last.io = last.io - carve;
        last.nanos -= carved_nanos;
        self.ops.push(OpProfile {
            name: name.into(),
            io: carve,
            nanos: carved_nanos,
        });
    }

    /// Finish profiling: close any residual segment as `"other"` and set
    /// the totals. Returns `self` for call-chaining convenience.
    pub fn finish(mut self) -> Profile {
        let now = Instant::now();
        let snap = io::snapshot();
        let residual = snap - self.last_io;
        if !residual.is_zero() {
            self.ops.push(OpProfile {
                name: crate::names::OP_OTHER.to_string(),
                io: residual,
                nanos: now.duration_since(self.last_t).as_nanos(),
            });
        }
        self.total_io = snap - self.start_io;
        self.total_nanos = now.duration_since(self.start_t).as_nanos();
        self
    }

    /// Sum of the per-operator I/O deltas.
    ///
    /// Equals [`Profile::total_io`] after [`Profile::finish`] — the
    /// invariant the tests assert.
    pub fn ops_io_sum(&self) -> IoCounts {
        self.ops
            .iter()
            .fold(IoCounts::default(), |acc, op| acc + op.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;

    #[test]
    fn segments_telescope_to_the_total() {
        let mut p = Profile::start();
        io::record_disk_read();
        io::record_pool_miss();
        p.mark("access");
        io::record_pool_hit();
        io::record_pool_hit();
        p.mark("project");
        io::record_disk_write();
        let p = p.finish(); // residual write lands in "other"
        assert_eq!(p.ops.len(), 3);
        assert_eq!(p.ops[0].name, "access");
        assert_eq!(p.ops[0].io.disk_reads, 1);
        assert_eq!(p.ops[1].io.pool_hits, 2);
        assert_eq!(p.ops[2].name, "other");
        assert_eq!(p.ops[2].io.disk_writes, 1);
        assert_eq!(p.ops_io_sum(), p.total_io);
    }

    #[test]
    fn zero_io_segments_are_kept() {
        let mut p = Profile::start();
        p.mark("plan");
        io::record_pool_hit();
        p.mark("access");
        let p = p.finish();
        assert_eq!(p.ops.len(), 2);
        assert!(p.ops[0].io.is_zero());
        assert_eq!(p.ops_io_sum(), p.total_io);
    }

    #[test]
    fn split_last_preserves_the_sum() {
        let mut p = Profile::start();
        io::record_pool_hit();
        io::record_pool_hit();
        io::record_pool_hit();
        io::record_disk_write();
        p.mark("apply");
        p.split_last(
            "core.propagate",
            IoCounts {
                pool_hits: 2,
                ..Default::default()
            },
        );
        let p = p.finish();
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.ops[0].name, "apply");
        assert_eq!(p.ops[0].io.pool_hits, 1);
        assert_eq!(p.ops[0].io.disk_writes, 1);
        assert_eq!(p.ops[1].name, "core.propagate");
        assert_eq!(p.ops[1].io.pool_hits, 2);
        assert_eq!(p.ops_io_sum(), p.total_io);
    }

    #[test]
    fn split_with_nothing_to_carve_is_a_noop() {
        let mut p = Profile::start();
        io::record_pool_hit();
        p.mark("apply");
        p.split_last("core.propagate", IoCounts::default());
        let p = p.finish();
        assert_eq!(p.ops.len(), 1);
        assert_eq!(p.ops_io_sum(), p.total_io);
    }
}
