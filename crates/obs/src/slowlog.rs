//! Bounded slow-query log.
//!
//! Any statement whose wall clock or page I/O crosses a configurable
//! threshold gets its full per-operator [`Profile`], plan text, and a
//! workload snapshot appended to a fixed-capacity ring. The ring is
//! process-wide (like the [recorder](crate::recorder) and the metrics
//! [registry](crate::metrics::registry)), queryable as the
//! `sys.slow_queries` virtual table, and dumpable as JSONL.
//!
//! Both thresholds start **off** (`u64::MAX`): the engine calls
//! [`observe`] at every statement boundary unconditionally, and the two
//! relaxed atomic loads make the disabled path free. `set slowlog
//! threshold 10 ms 100 pages` in `lang` (or [`set_thresholds`] directly)
//! arms it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::export::{escape_json, io_json, JSONL_SCHEMA_VERSION};
use crate::metrics::{registry, Counter};
use crate::names;
use crate::profile::Profile;
use crate::recorder::clock_nanos;

/// Ring capacity (entries) of the global slow-query log.
pub const DEFAULT_CAPACITY: usize = 64;

/// Threshold value meaning "never trips".
const OFF: u64 = u64::MAX;

/// One over-threshold statement, with everything needed to explain it
/// after the fact.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Monotonic sequence number (order of recording, never reused).
    pub seq: u64,
    /// [`clock_nanos`] timestamp at recording.
    pub at_nanos: u64,
    /// The statement text as the user wrote it.
    pub statement: String,
    /// Plan rendering at execution time.
    pub plan: String,
    /// Wall-clock nanoseconds the statement took.
    pub wall_nanos: u64,
    /// Page touches (pool hits + misses) the statement cost.
    pub io_pages: u64,
    /// Rows the statement produced or updated.
    pub rows: u64,
    /// The statement's full per-operator profile.
    pub profile: Profile,
    /// Per-path workload snapshot at recording time (one line per path).
    pub workload: String,
}

struct SlowLog {
    wall_threshold_nanos: AtomicU64,
    io_threshold_pages: AtomicU64,
    seq: AtomicU64,
    ring: Mutex<VecDeque<SlowQuery>>,
}

struct SlowLogCounters {
    recorded: Arc<Counter>,
    evicted: Arc<Counter>,
}

fn counters() -> &'static SlowLogCounters {
    static COUNTERS: OnceLock<SlowLogCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = registry();
        SlowLogCounters {
            recorded: r.counter(names::OBS_SLOWLOG_RECORDED),
            evicted: r.counter(names::OBS_SLOWLOG_EVICTED),
        }
    })
}

fn log() -> &'static SlowLog {
    static LOG: OnceLock<SlowLog> = OnceLock::new();
    LOG.get_or_init(|| SlowLog {
        wall_threshold_nanos: AtomicU64::new(OFF),
        io_threshold_pages: AtomicU64::new(OFF),
        seq: AtomicU64::new(0),
        ring: Mutex::new(VecDeque::with_capacity(DEFAULT_CAPACITY)),
    })
}

/// Arm the log: record any statement whose wall clock exceeds `wall_ms`
/// milliseconds **or** whose page touches exceed `io_pages`. `None`
/// disables that trigger.
pub fn set_thresholds(wall_ms: Option<u64>, io_pages: Option<u64>) {
    let l = log();
    l.wall_threshold_nanos.store(
        wall_ms.map_or(OFF, |ms| ms.saturating_mul(1_000_000)),
        Ordering::Relaxed,
    );
    l.io_threshold_pages
        .store(io_pages.unwrap_or(OFF), Ordering::Relaxed);
}

/// Disable both triggers (the initial state).
pub fn set_off() {
    set_thresholds(None, None);
}

/// The armed thresholds as `(wall_ms, io_pages)`; `None` = off.
pub fn thresholds() -> (Option<u64>, Option<u64>) {
    let l = log();
    let wall = l.wall_threshold_nanos.load(Ordering::Relaxed);
    let pages = l.io_threshold_pages.load(Ordering::Relaxed);
    (
        (wall != OFF).then_some(wall / 1_000_000),
        (pages != OFF).then_some(pages),
    )
}

/// Statement-boundary hook: record the statement if it crossed either
/// armed threshold. Returns whether it was recorded. Costs two relaxed
/// loads when the log is off.
pub fn observe(statement: &str, plan: &str, profile: &Profile, rows: u64, workload: &str) -> bool {
    let l = log();
    let wall_nanos = profile.total_nanos.min(u128::from(u64::MAX)) as u64;
    let io_pages = profile.total_io.page_touches();
    let over_wall = wall_nanos >= l.wall_threshold_nanos.load(Ordering::Relaxed);
    let over_io = io_pages >= l.io_threshold_pages.load(Ordering::Relaxed);
    if !(over_wall || over_io) {
        return false;
    }
    let entry = SlowQuery {
        seq: l.seq.fetch_add(1, Ordering::Relaxed),
        at_nanos: clock_nanos(),
        statement: statement.to_string(),
        plan: plan.to_string(),
        wall_nanos,
        io_pages,
        rows,
        profile: profile.clone(),
        workload: workload.to_string(),
    };
    let mut ring = l.ring.lock();
    ring.push_back(entry);
    let c = counters();
    c.recorded.inc();
    if ring.len() > DEFAULT_CAPACITY {
        ring.pop_front();
        c.evicted.inc();
    }
    true
}

/// Snapshot the retained entries, oldest first.
pub fn entries() -> Vec<SlowQuery> {
    log().ring.lock().iter().cloned().collect()
}

/// Forget all retained entries (sequence numbers keep increasing).
pub fn clear() {
    log().ring.lock().clear();
}

/// Total entries ever recorded (including evicted ones).
pub fn recorded_total() -> u64 {
    log().seq.load(Ordering::Relaxed)
}

/// One JSONL line for a slow-query entry.
pub fn entry_jsonl(e: &SlowQuery) -> String {
    let ops = e
        .profile
        .ops
        .iter()
        .map(|op| {
            format!(
                "{{\"name\":\"{}\",\"nanos\":{},\"io\":{}}}",
                escape_json(&op.name),
                op.nanos,
                io_json(&op.io)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"type\":\"slow_query\",\"seq\":{},\"at_nanos\":{},\"statement\":\"{}\",\"plan\":\"{}\",\"wall_nanos\":{},\"io_pages\":{},\"rows\":{},\"workload\":\"{}\",\"ops\":[{}]}}",
        e.seq,
        e.at_nanos,
        escape_json(&e.statement),
        escape_json(&e.plan),
        e.wall_nanos,
        e.io_pages,
        e.rows,
        escape_json(&e.workload),
        ops
    )
}

/// The retained entries as JSONL: a `slowlog_dump` header line then one
/// `slow_query` line per entry, oldest first.
pub fn dump_jsonl() -> Vec<String> {
    let entries = entries();
    let mut lines = Vec::with_capacity(entries.len() + 1);
    lines.push(format!(
        "{{\"type\":\"slowlog_dump\",\"schema_version\":{},\"entries\":{},\"recorded_total\":{}}}",
        JSONL_SCHEMA_VERSION,
        entries.len(),
        recorded_total()
    ));
    for e in &entries {
        lines.push(entry_jsonl(e));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;

    /// The slow log is process-global; tests that arm it must not
    /// interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn profile_with_io(pages: u64) -> Profile {
        let mut p = Profile::start();
        for _ in 0..pages {
            io::record_pool_hit();
        }
        p.mark("access:full-scan");
        p.finish()
    }

    #[test]
    fn off_log_records_nothing() {
        let _g = serial();
        set_off();
        clear();
        let p = profile_with_io(1_000);
        assert!(!observe("retrieve (x)", "plan", &p, 10, ""));
        assert!(entries().is_empty());
    }

    #[test]
    fn io_threshold_trips_and_entry_carries_the_profile() {
        let _g = serial();
        set_thresholds(None, Some(3));
        clear();
        let fast = profile_with_io(2);
        let slow = profile_with_io(5);
        assert!(!observe("fast", "p", &fast, 1, ""));
        assert!(observe("slow", "p", &slow, 7, "A.b: reads=1"));
        set_off();
        let got = entries();
        assert_eq!(got.len(), 1);
        let e = &got[0];
        assert_eq!(e.statement, "slow");
        assert_eq!(e.io_pages, 5);
        assert_eq!(e.rows, 7);
        assert_eq!(e.workload, "A.b: reads=1");
        assert_eq!(e.profile.ops[0].name, "access:full-scan");
        assert_eq!(e.profile.total_io.pool_hits, 5);
        clear();
    }

    #[test]
    fn wall_threshold_of_zero_records_everything_and_ring_is_bounded() {
        let _g = serial();
        set_thresholds(Some(0), None);
        clear();
        let base = recorded_total();
        let p = profile_with_io(0);
        for i in 0..(DEFAULT_CAPACITY + 5) {
            assert!(observe(&format!("stmt {i}"), "p", &p, 0, ""));
        }
        set_off();
        let got = entries();
        assert_eq!(got.len(), DEFAULT_CAPACITY, "ring is bounded");
        assert_eq!(recorded_total() - base, (DEFAULT_CAPACITY + 5) as u64);
        // Oldest entries were evicted; the survivors are the newest.
        assert_eq!(got.last().map(|e| e.statement.as_str()), Some("stmt 68"));
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        clear();
    }

    #[test]
    fn dump_lines_are_shaped_and_escaped() {
        let _g = serial();
        set_thresholds(Some(0), None);
        clear();
        let p = profile_with_io(2);
        observe("retrieve (\"x\")", "sys scan", &p, 1, "w");
        set_off();
        let lines = dump_jsonl();
        assert!(lines[0].contains("\"type\":\"slowlog_dump\""));
        assert!(lines[0].contains(&format!("\"schema_version\":{JSONL_SCHEMA_VERSION}")));
        let entry = lines.last().expect("one entry line");
        assert!(entry.contains("\"type\":\"slow_query\""));
        assert!(entry.contains("retrieve (\\\"x\\\")"));
        assert!(entry.contains("\"io_pages\":2"));
        assert!(entry.contains("\"ops\":[{"));
        clear();
    }

    #[test]
    fn thresholds_roundtrip() {
        let _g = serial();
        set_thresholds(Some(25), Some(100));
        assert_eq!(thresholds(), (Some(25), Some(100)));
        set_thresholds(Some(10), None);
        assert_eq!(thresholds(), (Some(10), None));
        set_off();
        assert_eq!(thresholds(), (None, None));
    }
}
