//! Hierarchical spans with page-I/O attribution.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] snapshots the current
//! thread's [`IoCounts`](crate::io::IoCounts) and wall clock; dropping
//! the span computes the deltas and attaches the finished node to its
//! parent (the span that was open when it entered) or, for roots, to a
//! thread-local finished list drained by [`take_finished`].
//!
//! Tracing is **off by default**. When disabled, `Span::enter` reads one
//! thread-local flag and returns an inert guard — cheap enough to leave
//! span calls in hot paths unconditionally.
//!
//! Independently of the tracing flag, every span enter/exit is fed to
//! the always-on [flight recorder](crate::recorder) (exit events carry
//! the span's wall time and I/O delta), so a post-mortem dump shows the
//! recent span activity even when nobody asked for a trace up front.

use std::cell::RefCell;
use std::time::Instant;

use crate::io::{self, IoCounts};
use crate::recorder;

/// A finished span: name, wall time, attributed I/O delta, notes, and
/// child spans, in completion order.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Dotted span name, e.g. `"query.read"` or `"btree.lookup"`.
    pub name: String,
    /// [`recorder::clock_nanos`] timestamp at span entry, so trace
    /// exporters can place the span on the shared telemetry clock.
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
    /// Page-I/O delta attributed to this span (children included).
    pub io: IoCounts,
    /// Free-form `key=value` annotations added via [`Span::note`].
    pub notes: Vec<(String, String)>,
    /// Child spans, outermost-first in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of nodes in this subtree (including `self`).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::node_count)
            .sum::<usize>()
    }

    /// Depth-first search for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

struct OpenSpan {
    name: String,
    start: Instant,
    start_nanos: u64,
    io_at_enter: IoCounts,
    notes: Vec<(String, String)>,
    children: Vec<SpanNode>,
}

struct TraceState {
    enabled: bool,
    stack: Vec<OpenSpan>,
    finished: Vec<SpanNode>,
}

thread_local! {
    static TRACE: RefCell<TraceState> = const {
        RefCell::new(TraceState {
            enabled: false,
            stack: Vec::new(),
            finished: Vec::new(),
        })
    };
}

/// Enable or disable tracing on the current thread.
///
/// Disabling mid-trace abandons any open spans.
pub fn set_tracing(enabled: bool) {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        t.enabled = enabled;
        if !enabled {
            t.stack.clear();
        }
    });
}

/// Whether tracing is enabled on the current thread.
pub fn tracing_enabled() -> bool {
    TRACE.with(|t| t.borrow().enabled)
}

/// Drain the finished root spans recorded on this thread.
pub fn take_finished() -> Vec<SpanNode> {
    TRACE.with(|t| std::mem::take(&mut t.borrow_mut().finished))
}

/// Flight-recorder bookkeeping carried by a live span: enough to emit
/// the exit event (with wall time and I/O delta) on drop.
struct RecSpan {
    name: &'static str,
    start: Instant,
    io_at_enter: IoCounts,
}

/// RAII span guard; see the [module docs](self).
#[must_use = "a span attributes I/O for as long as the guard lives"]
pub struct Span {
    active: bool,
    rec: Option<RecSpan>,
}

impl Span {
    /// Open a span named `name`. Nested calls become children.
    pub fn enter(name: &str) -> Span {
        // Flight-recorder hook: fires regardless of the tracing flag so
        // post-mortem dumps always have recent span context.
        let rec = if recorder::enabled() {
            recorder::record(name, recorder::EventKind::SpanEnter);
            Some(RecSpan {
                name: recorder::intern(name),
                start: Instant::now(),
                io_at_enter: io::snapshot(),
            })
        } else {
            None
        };
        TRACE.with(|t| {
            let mut t = t.borrow_mut();
            if !t.enabled {
                return Span { active: false, rec };
            }
            let open = OpenSpan {
                name: name.to_string(),
                start: Instant::now(),
                start_nanos: recorder::clock_nanos(),
                io_at_enter: io::snapshot(),
                notes: Vec::new(),
                children: Vec::new(),
            };
            t.stack.push(open);
            Span { active: true, rec }
        })
    }

    /// Open a child span. Equivalent to [`Span::enter`] while `self` is
    /// the innermost open span; provided for call-site readability.
    pub fn child(&self, name: &str) -> Span {
        Span::enter(name)
    }

    /// Attach a `key=value` note to this span (innermost open span).
    pub fn note(&self, key: &str, value: impl std::fmt::Display) {
        if !self.active {
            return;
        }
        TRACE.with(|t| {
            if let Some(top) = t.borrow_mut().stack.last_mut() {
                top.notes.push((key.to_string(), value.to_string()));
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            recorder::record(
                rec.name,
                recorder::EventKind::SpanExit {
                    nanos: rec.start.elapsed().as_nanos() as u64,
                    io: io::snapshot() - rec.io_at_enter,
                },
            );
        }
        if !self.active {
            return;
        }
        TRACE.with(|t| {
            let mut t = t.borrow_mut();
            // `set_tracing(false)` mid-span clears the stack; nothing to do.
            let Some(open) = t.stack.pop() else { return };
            let node = SpanNode {
                name: open.name,
                start_nanos: open.start_nanos,
                nanos: open.start.elapsed().as_nanos(),
                io: io::snapshot() - open.io_at_enter,
                notes: open.notes,
                children: open.children,
            };
            match t.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => t.finished.push(node),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;

    fn traced<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanNode>) {
        set_tracing(true);
        take_finished();
        let out = f();
        let spans = take_finished();
        set_tracing(false);
        (out, spans)
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        set_tracing(false);
        {
            let s = Span::enter("quiet");
            s.note("k", "v");
        }
        assert!(take_finished().is_empty());
    }

    #[test]
    fn spans_feed_the_flight_recorder_even_with_tracing_off() {
        use crate::recorder::{self, EventKind};
        set_tracing(false);
        let before = recorder::global().recorded_total();
        {
            let _s = Span::enter("t.span.recorded");
            io::record_pool_hit();
        }
        let events = recorder::global().events();
        assert!(recorder::global().recorded_total() >= before + 2);
        let enter = events
            .iter()
            .find(|e| e.name == "t.span.recorded" && e.kind == EventKind::SpanEnter);
        assert!(enter.is_some(), "enter event recorded");
        let exit = events
            .iter()
            .find(|e| e.name == "t.span.recorded" && matches!(e.kind, EventKind::SpanExit { .. }));
        let Some(exit) = exit else {
            panic!("exit event recorded");
        };
        if let EventKind::SpanExit { io, .. } = &exit.kind {
            assert_eq!(io.pool_hits, 1, "exit event carries the span's I/O delta");
        }
    }

    #[test]
    fn nesting_builds_a_tree() {
        let (_, spans) = traced(|| {
            let root = Span::enter("query.read");
            {
                let _a = root.child("btree.lookup");
                let _b = Span::enter("storage.fetch");
            }
            let _c = root.child("project");
        });
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.name, "query.read");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "btree.lookup");
        assert_eq!(root.children[0].children[0].name, "storage.fetch");
        assert_eq!(root.children[1].name, "project");
        assert_eq!(root.node_count(), 4);
        assert!(root.find("storage.fetch").is_some());
    }

    #[test]
    fn io_deltas_attribute_to_the_open_span() {
        let (_, spans) = traced(|| {
            let root = Span::enter("outer");
            io::record_pool_hit();
            {
                let _child = root.child("inner");
                io::record_disk_read();
                io::record_disk_read();
                io::record_pool_miss();
            }
            io::record_disk_write();
        });
        let root = &spans[0];
        let inner = &root.children[0];
        assert_eq!(inner.io.disk_reads, 2);
        assert_eq!(inner.io.pool_misses, 1);
        assert_eq!(inner.io.disk_writes, 0);
        // The root sees its own I/O plus the child's.
        assert_eq!(root.io.disk_reads, 2);
        assert_eq!(root.io.disk_writes, 1);
        assert_eq!(root.io.pool_hits, 1);
        // Root-exclusive I/O = root delta minus children deltas.
        let exclusive = root.io - inner.io;
        assert_eq!(exclusive.disk_reads, 0);
        assert_eq!(exclusive.disk_writes, 1);
        assert_eq!(exclusive.pool_hits, 1);
    }

    #[test]
    fn notes_and_sequential_roots() {
        let (_, spans) = traced(|| {
            {
                let s = Span::enter("first");
                s.note("rows", 42);
            }
            let _ = Span::enter("second");
        });
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].notes, vec![("rows".to_string(), "42".to_string())]);
        assert_eq!(spans[1].name, "second");
    }
}
