//! Observability for the field-replication engine.
//!
//! Three cooperating pieces, all dependency-free (std + `parking_lot`):
//!
//! * [`io`] — page-I/O accounting. The storage layer calls the `record_*`
//!   hooks on every buffer-pool and disk event; the counts land in a
//!   **thread-local** accumulator (so concurrent test threads never
//!   pollute each other's attribution) and are mirrored into the global
//!   [`metrics`] registry for process-wide totals.
//! * [`span`] — hierarchical spans. [`span::Span::enter`] snapshots the
//!   thread-local I/O counts; when the span drops, the delta (pages
//!   read/written, pool hits/misses, evictions) and wall time are
//!   attached to the finished span tree. Tracing is off by default and
//!   costs one thread-local read per `enter` when disabled.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms
//!   with `p50`/`p95`/`p99` accessors, behind cheap atomics.
//!
//! [`profile::Profile`] builds on [`io`] to give queries an
//! `EXPLAIN ANALYZE`-style per-operator breakdown whose segments
//! telescope: the per-operator I/O deltas sum **exactly** to the
//! profile's total, by construction.
//!
//! [`export`] renders span trees and registry snapshots as
//! human-readable text or JSON lines.

pub mod export;
pub mod io;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod span;

pub use io::IoCounts;
pub use metrics::{registry, Registry};
pub use profile::{OpProfile, Profile};
pub use span::{set_tracing, take_finished, tracing_enabled, Span, SpanNode};
