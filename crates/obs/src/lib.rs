//! Observability for the field-replication engine.
//!
//! Three cooperating pieces, all dependency-free (std + `parking_lot`):
//!
//! * [`io`] — page-I/O accounting. The storage layer calls the `record_*`
//!   hooks on every buffer-pool and disk event; the counts land in a
//!   **thread-local** accumulator (so concurrent test threads never
//!   pollute each other's attribution) and are mirrored into the global
//!   [`metrics`] registry for process-wide totals.
//! * [`span`] — hierarchical spans. [`span::Span::enter`] snapshots the
//!   thread-local I/O counts; when the span drops, the delta (pages
//!   read/written, pool hits/misses, evictions) and wall time are
//!   attached to the finished span tree. Tracing is off by default and
//!   costs one thread-local read per `enter` when disabled.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms
//!   with `p50`/`p95`/`p99` accessors, behind cheap atomics.
//!
//! [`profile::Profile`] builds on [`io`] to give queries an
//! `EXPLAIN ANALYZE`-style per-operator breakdown whose segments
//! telescope: the per-operator I/O deltas sum **exactly** to the
//! profile's total, by construction.
//!
//! [`export`] renders span trees and registry snapshots as
//! human-readable text or JSON lines.
//!
//! Two always-on companions extend the profiler into a telemetry
//! pipeline: [`recorder`] keeps a fixed-capacity flight-recorder ring of
//! recent span and I/O-delta events for post-mortem dumps, and
//! [`timeline`] turns registry snapshots into a bounded delta
//! time-series with JSONL and `obs_report` exports.
//!
//! The introspection layer makes all of it *data*: [`sys`] exposes the
//! obs structures as virtual-table rows (queryable from `lang` as
//! `sys.metrics`, `sys.recorder`, …), [`slowlog`] keeps a bounded ring
//! of over-threshold statements with their full per-operator profiles,
//! and [`export::chrome_trace_json`] renders any span tree as a
//! Chrome-trace/Perfetto document.

pub mod export;
pub mod io;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod recorder;
pub mod slowlog;
pub mod span;
pub mod sys;
pub mod timeline;

pub use io::IoCounts;
pub use metrics::{registry, Registry};
pub use profile::{OpProfile, Profile};
pub use span::{set_tracing, take_finished, tracing_enabled, Span, SpanNode};
pub use timeline::Timeline;
