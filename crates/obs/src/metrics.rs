//! Process-wide metrics registry: named counters, gauges, and
//! fixed-bucket histograms behind cheap atomics.
//!
//! Handles are `Arc`s into the global [`registry`]; after the first
//! lookup the hot path is a single atomic RMW with no locking.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// Bucket `i` counts samples `<= bounds[i]`; one extra overflow bucket
/// catches the rest. Quantiles are estimated as the upper bound of the
/// bucket containing the target rank (the recorded maximum for the
/// overflow bucket), which is exact whenever samples sit on bucket
/// boundaries and conservative otherwise.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// bounds.len() + 1 buckets; the last is overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0 < q <= 1.0`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max()
                });
            }
        }
        Some(self.max())
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The metrics registry: name → instrument.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name` with the given bucket
    /// upper bounds. If it already exists, the existing instrument (and
    /// its original bounds) wins.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| HistogramSnapshot {
                name: k.clone(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                max: h.max(),
                p50: h.p50(),
                p95: h.p95(),
                p99: h.p99(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let derived = derive_metrics(&counters);
        Snapshot {
            counters,
            gauges,
            histograms,
            derived,
        }
    }
}

/// Ratios computed from raw counters at snapshot time, so exports are
/// readable without manual arithmetic. Currently:
/// `storage.pool.hit_rate` = hits / (hits + misses).
fn derive_metrics(counters: &[(String, u64)]) -> Vec<(String, f64)> {
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v as f64)
    };
    let mut derived = Vec::new();
    if let (Some(hits), Some(misses)) = (
        get(crate::names::STORAGE_POOL_HITS),
        get(crate::names::STORAGE_POOL_MISSES),
    ) {
        if hits + misses > 0.0 {
            derived.push((
                crate::names::STORAGE_POOL_HIT_RATE.to_string(),
                hits / (hits + misses),
            ));
        }
    }
    derived
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean of samples.
    pub mean: f64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: Option<u64>,
    /// 95th-percentile estimate.
    pub p95: Option<u64>,
    /// 99th-percentile estimate.
    pub p99: Option<u64>,
    /// Configured bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (last is overflow).
    pub buckets: Vec<u64>,
}

/// Point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(name, value)` for every derived ratio (see [`Registry::snapshot`]),
    /// e.g. `storage.pool.hit_rate`.
    pub derived: Vec<(String, f64)>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::default();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5, "same name returns same counter");
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(&[1, 10, 100]);
        // On-boundary values land in the bucket they bound (<=).
        h.record(1);
        h.record(10);
        h.record(100);
        // Off-boundary values land in the next bucket up.
        h.record(2);
        h.record(11);
        // Overflow.
        h.record(101);
        h.record(5_000);
        assert_eq!(h.bucket_counts(), vec![1, 2, 2, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 5_000);
        assert_eq!(h.sum(), 1 + 10 + 100 + 2 + 11 + 101 + 5_000);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new(&[1, 2, 4, 8, 16]);
        for v in [1, 1, 2, 2, 2, 4, 4, 8, 8, 30] {
            h.record(v);
        }
        // Ranks (1-based) over 10 samples sorted: 1 1 2 2 2 4 4 8 8 30.
        assert_eq!(h.p50(), Some(2));
        assert_eq!(h.quantile(0.7), Some(4));
        assert_eq!(h.p95(), Some(30), "p95 rank 10 falls in overflow → max");
        assert_eq!(h.p99(), Some(30));
        assert_eq!(h.quantile(1.0), Some(30));
        // Tiny q clamps to the first sample.
        assert_eq!(h.quantile(0.001), Some(1));
        assert!((h.mean() - 6.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(&[1, 2]);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_all_agree() {
        // On a bucket boundary every quantile is exact.
        let h = Histogram::new(&[1, 2, 4, 8, 16]);
        h.record(8);
        for q in [0.001, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(8), "q={q}");
        }
        assert_eq!(h.mean(), 8.0);
        assert_eq!(h.max(), 8);
        // A single overflow sample reports the recorded max everywhere.
        let h = Histogram::new(&[1, 2]);
        h.record(100);
        assert_eq!(h.p50(), Some(100));
        assert_eq!(h.p99(), Some(100));
        assert_eq!(h.bucket_counts(), vec![0, 0, 1]);
    }

    #[test]
    fn counter_deltas_never_go_negative_across_resets() {
        // Registry counters are monotonic: lower layers may reset their
        // own profiles (e.g. `reset_profile()` on the storage side), but
        // mirrored counters only ever grow, so snapshot deltas taken by
        // the timeline stay non-negative by construction.
        let r = Registry::default();
        let c = r.counter("t.reset.counter");
        c.add(10);
        let before = r.snapshot();
        // A storage-style "reset" has no registry analog; the counter
        // keeps its value and keeps growing.
        c.add(2);
        let after = r.snapshot();
        let get = |s: &Snapshot| {
            s.counters
                .iter()
                .find(|(n, _)| n == "t.reset.counter")
                .map_or(0, |(_, v)| *v)
        };
        assert!(get(&after) >= get(&before), "counters are monotonic");
        assert_eq!(get(&after) - get(&before), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::default();
        r.counter("b").add(2);
        r.counter("a").inc();
        r.gauge("z").set(-4);
        r.histogram("h", &[1, 2, 4]).record(3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".into(), 1), ("b".into(), 2)]);
        assert_eq!(snap.gauges, vec![("z".into(), -4)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].buckets, vec![0, 0, 1, 0]);
        assert!(snap.derived.is_empty(), "no pool counters, no ratio");
    }

    #[test]
    fn pool_hit_rate_is_derived_at_snapshot_time() {
        let r = Registry::default();
        r.counter("storage.pool.hits").add(3);
        r.counter("storage.pool.misses").add(1);
        let snap = r.snapshot();
        assert_eq!(snap.derived.len(), 1);
        assert_eq!(snap.derived[0].0, "storage.pool.hit_rate");
        assert!((snap.derived[0].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_skipped_when_pool_untouched() {
        let r = Registry::default();
        r.counter("storage.pool.hits");
        r.counter("storage.pool.misses");
        assert!(r.snapshot().derived.is_empty(), "0/0 must not divide");
    }
}
