//! Flight recorder: a fixed-capacity ring of the most recent telemetry
//! events, kept **always on** so a crash or engine error can explain
//! itself after the fact.
//!
//! Every span enter/exit (regardless of the per-thread tracing flag) and
//! every I/O component delta lands in a process-wide ring buffer with a
//! monotonic timestamp. The ring never blocks writers on readers: a slot
//! is reserved with one atomic `fetch_add`, then filled under that slot's
//! own tiny mutex (uncontended except when the ring wraps onto an active
//! reader). When the engine hits an error it calls [`record_error`],
//! which appends an error event and hands the last-N-events JSONL dump to
//! the installed sink; [`install_panic_hook`] does the same for panics,
//! printing the dump to stderr before unwinding continues.
//!
//! Overhead when enabled is a clock read, one atomic increment, and an
//! uncontended lock per event; [`set_enabled`]`(false)` reduces every
//! hook to a single relaxed load (the configuration the bench suite's
//! overhead section compares against).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::export::{escape_json, io_json, JSONL_SCHEMA_VERSION};
use crate::io::IoCounts;
use crate::metrics::{registry, Counter};
use crate::names;
use std::collections::BTreeSet;

/// Default ring capacity (events) for the global recorder.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Nanoseconds since the process-wide telemetry clock started (first
/// use). Monotonic; shared by the recorder and the timeline so their
/// timestamps are directly comparable.
pub fn clock_nanos() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Intern a name so events store a `&'static str` instead of allocating
/// per event. The table only ever grows and names come from the fixed
/// `obs::names` registry, so the leak is bounded.
pub(crate) fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<RwLock<BTreeSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| RwLock::new(BTreeSet::new()));
    if let Some(s) = set.read().get(name) {
        return s;
    }
    let mut w = set.write();
    if let Some(s) = w.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    w.insert(leaked);
    leaked
}

/// What happened, per event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A span was opened.
    SpanEnter,
    /// A span closed after `nanos`, having attributed `io`.
    SpanExit {
        /// Span wall time in nanoseconds.
        nanos: u64,
        /// Page-I/O delta over the span's lifetime.
        io: IoCounts,
    },
    /// A named I/O component delta was published (metric delta).
    IoDelta {
        /// The component's page-I/O delta.
        io: IoCounts,
    },
    /// An engine error surfaced.
    Error {
        /// The error's display text.
        message: String,
    },
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (global order of recording).
    pub seq: u64,
    /// [`clock_nanos`] timestamp at recording.
    pub at_nanos: u64,
    /// The span/component name the event is about.
    pub name: &'static str,
    /// What happened.
    pub kind: EventKind,
}

/// The ring buffer itself. The process-wide instance is [`global`];
/// tests can build private instances with [`Recorder::with_capacity`].
pub struct Recorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

impl Recorder {
    /// A recorder holding at most `capacity` events (≥ 1).
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append one event. Returns `Some(evicted)` when recorded (with
    /// whether an older event was overwritten), `None` when disabled.
    pub fn record(&self, name: &str, kind: EventKind) -> Option<bool> {
        if !self.enabled() {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let event = Event {
            seq,
            at_nanos: clock_nanos(),
            name: intern(name),
            kind,
        };
        let mut slot = self.slots[idx].lock();
        let evicted = slot.is_some();
        *slot = Some(event);
        Some(evicted)
    }

    /// Number of events ever recorded (including evicted ones).
    pub fn recorded_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Snapshot the retained events in sequence order.
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Forget all retained events (sequence numbers keep increasing).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock() = None;
        }
    }

    /// The retained events as JSONL: a `recorder_dump` header line then
    /// one `recorder_event` line per event, oldest first.
    pub fn dump_jsonl(&self) -> Vec<String> {
        let events = self.events();
        let total = self.recorded_total();
        let mut lines = Vec::with_capacity(events.len() + 1);
        lines.push(format!(
            "{{\"type\":\"recorder_dump\",\"schema_version\":{},\"events\":{},\"recorded_total\":{}}}",
            JSONL_SCHEMA_VERSION,
            events.len(),
            total
        ));
        for e in &events {
            lines.push(event_jsonl(e));
        }
        lines
    }
}

/// One JSONL line for a recorded event.
pub fn event_jsonl(e: &Event) -> String {
    let head = format!(
        "{{\"type\":\"recorder_event\",\"seq\":{},\"at_nanos\":{},\"name\":\"{}\"",
        e.seq,
        e.at_nanos,
        escape_json(e.name)
    );
    match &e.kind {
        EventKind::SpanEnter => format!("{head},\"event\":\"span_enter\"}}"),
        EventKind::SpanExit { nanos, io } => format!(
            "{head},\"event\":\"span_exit\",\"nanos\":{nanos},\"io\":{}}}",
            io_json(io)
        ),
        EventKind::IoDelta { io } => {
            format!("{head},\"event\":\"io_delta\",\"io\":{}}}", io_json(io))
        }
        EventKind::Error { message } => format!(
            "{head},\"event\":\"error\",\"message\":\"{}\"}}",
            escape_json(message)
        ),
    }
}

struct RecorderCounters {
    events: Arc<Counter>,
    dropped: Arc<Counter>,
    dumps: Arc<Counter>,
    dumps_suppressed: Arc<Counter>,
    errors: Arc<Counter>,
}

fn counters() -> &'static RecorderCounters {
    static COUNTERS: OnceLock<RecorderCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = registry();
        RecorderCounters {
            events: r.counter(names::OBS_RECORDER_EVENTS),
            dropped: r.counter(names::OBS_RECORDER_DROPPED),
            dumps: r.counter(names::OBS_RECORDER_DUMPS),
            dumps_suppressed: r.counter(names::OBS_RECORDER_DUMPS_SUPPRESSED),
            errors: r.counter(names::OBS_RECORDER_ERRORS),
        }
    })
}

/// The process-wide recorder the span/I-O hooks feed.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| Recorder::with_capacity(DEFAULT_CAPACITY))
}

/// Enable or disable the global recorder (it starts enabled).
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global recorder is currently recording.
pub fn enabled() -> bool {
    global().enabled()
}

/// Record one event in the global ring and maintain the
/// `obs.recorder.*` counters. No-op (one relaxed load) when disabled.
pub fn record(name: &str, kind: EventKind) {
    if let Some(evicted) = global().record(name, kind) {
        let c = counters();
        c.events.inc();
        if evicted {
            c.dropped.inc();
        }
    }
}

/// Dump the global ring as JSONL (header line + one line per event).
pub fn dump_jsonl() -> Vec<String> {
    counters().dumps.inc();
    global().dump_jsonl()
}

type DumpSink = Box<dyn Fn(&[String]) + Send + Sync>;

/// Most dumps one installed sink receives before further dumps are
/// suppressed (counted by `obs.recorder.dumps_suppressed`). A repeating
/// error storm still records every error *event*; the rate limit only
/// guards against re-dumping the whole ring per occurrence.
pub const MAX_DUMPS_PER_SINK: u64 = 8;

struct SinkState {
    sink: DumpSink,
    /// `(origin, message)` of the last error this sink dumped for, so a
    /// repeat of the same error dedupes instead of dumping again.
    last_error: Option<(String, String)>,
    /// Dumps delivered since this sink was installed.
    delivered: u64,
}

fn error_sink() -> &'static Mutex<Option<SinkState>> {
    static SINK: OnceLock<Mutex<Option<SinkState>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install (or replace) the sink that receives the JSONL dump whenever
/// [`record_error`] fires. Binaries typically write the lines to a file;
/// the recorder itself never touches the filesystem. Installing a sink
/// resets the per-sink dump budget and dedupe state.
pub fn set_error_sink(sink: impl Fn(&[String]) + Send + Sync + 'static) {
    *error_sink().lock() = Some(SinkState {
        sink: Box::new(sink),
        last_error: None,
        delivered: 0,
    });
}

/// Remove the error sink installed by [`set_error_sink`].
pub fn clear_error_sink() {
    *error_sink().lock() = None;
}

/// Record an engine error against `origin` (a registered span/component
/// name) and, when a sink is installed, hand it the ring dump. This is
/// the Result-path counterpart of [`install_panic_hook`].
///
/// Dumps are rate-limited per sink: a consecutive repeat of the same
/// `(origin, message)` pair and anything past [`MAX_DUMPS_PER_SINK`]
/// increments `obs.recorder.dumps_suppressed` instead of dumping. The
/// first occurrence of a new error always dumps (budget permitting).
pub fn record_error(origin: &str, message: &str) {
    record(
        origin,
        EventKind::Error {
            message: message.to_string(),
        },
    );
    counters().errors.inc();
    let mut sink = error_sink().lock();
    if let Some(state) = sink.as_mut() {
        let key = (origin.to_string(), message.to_string());
        let repeat = state.last_error.as_ref() == Some(&key);
        if repeat || state.delivered >= MAX_DUMPS_PER_SINK {
            counters().dumps_suppressed.inc();
            return;
        }
        state.last_error = Some(key);
        state.delivered += 1;
        (state.sink)(&dump_jsonl());
    }
}

/// Install a process-wide panic hook that prints the flight-recorder
/// dump to stderr before delegating to the previous hook. Idempotent:
/// only the first call installs.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        eprintln!("--- flight recorder dump (most recent last) ---");
        for line in dump_jsonl() {
            eprintln!("{line}");
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let r = Recorder::with_capacity(4);
        for i in 0..10u64 {
            let evicted = r
                .record("t.ring", EventKind::SpanEnter)
                .expect("enabled recorder records");
            assert_eq!(evicted, i >= 4, "eviction starts once the ring is full");
        }
        let events = r.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest events were overwritten");
        assert_eq!(r.recorded_total(), 10);
        assert!(
            events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos),
            "timestamps are monotonic in sequence order"
        );
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::with_capacity(4);
        r.set_enabled(false);
        assert!(r.record("t.off", EventKind::SpanEnter).is_none());
        assert!(r.events().is_empty());
        r.set_enabled(true);
        assert!(r.record("t.off", EventKind::SpanEnter).is_some());
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn dump_header_carries_schema_version_and_counts() {
        let r = Recorder::with_capacity(8);
        r.record("t.dump", EventKind::SpanEnter);
        r.record(
            "t.dump",
            EventKind::SpanExit {
                nanos: 42,
                io: IoCounts {
                    disk_reads: 3,
                    ..Default::default()
                },
            },
        );
        r.record(
            "t.dump",
            EventKind::Error {
                message: "boom \"quoted\"".into(),
            },
        );
        let lines = r.dump_jsonl();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"recorder_dump\""));
        assert!(lines[0].contains(&format!("\"schema_version\":{JSONL_SCHEMA_VERSION}")));
        assert!(lines[0].contains("\"events\":3"));
        assert!(lines[1].contains("\"event\":\"span_enter\""));
        assert!(lines[2].contains("\"event\":\"span_exit\""));
        assert!(lines[2].contains("\"disk_reads\":3"));
        assert!(lines[3].contains("\"event\":\"error\""));
        assert!(lines[3].contains("boom \\\"quoted\\\""));
    }

    #[test]
    fn clear_forgets_events_but_not_sequence() {
        let r = Recorder::with_capacity(4);
        r.record("t.clear", EventKind::SpanEnter);
        r.record("t.clear", EventKind::SpanEnter);
        r.clear();
        assert!(r.events().is_empty());
        assert_eq!(r.recorded_total(), 2);
        r.record("t.clear", EventKind::SpanEnter);
        assert_eq!(r.events()[0].seq, 2);
    }

    #[test]
    fn error_dumps_dedupe_and_cap_per_sink() {
        use std::sync::atomic::AtomicUsize;
        let suppressed = registry().counter(names::OBS_RECORDER_DUMPS_SUPPRESSED);
        let suppressed_before = suppressed.get();
        let delivered = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&delivered);
        set_error_sink(move |_| {
            d.fetch_add(1, Ordering::SeqCst);
        });
        record_error("t.ratelimit", "same boom");
        record_error("t.ratelimit", "same boom");
        record_error("t.ratelimit", "same boom");
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            1,
            "consecutive repeats dedupe after the first dump"
        );
        record_error("t.ratelimit", "other boom");
        assert_eq!(delivered.load(Ordering::SeqCst), 2, "a new error dumps");
        record_error("t.ratelimit", "same boom");
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            3,
            "a non-consecutive repeat dumps again"
        );
        for i in 0..20 {
            record_error("t.ratelimit", &format!("boom {i}"));
        }
        assert_eq!(
            delivered.load(Ordering::SeqCst) as u64,
            MAX_DUMPS_PER_SINK,
            "the per-sink budget caps deliveries"
        );
        assert!(
            suppressed.get() > suppressed_before,
            "suppressed dumps are counted"
        );

        // Re-installing the sink resets both the budget and the dedupe.
        let delivered2 = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&delivered2);
        set_error_sink(move |_| {
            d2.fetch_add(1, Ordering::SeqCst);
        });
        record_error("t.ratelimit", "same boom");
        assert_eq!(delivered2.load(Ordering::SeqCst), 1);
        clear_error_sink();
    }

    #[test]
    fn interning_returns_stable_pointers() {
        let a = intern("t.intern.name");
        let b = intern("t.intern.name");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "t.intern.name");
    }
}
