//! Multi-threaded hammer for the observability primitives.
//!
//! Two integrity properties under real contention:
//!
//! * **Timeline**: counter deltas across ticks are conservation-exact —
//!   with ticks interleaved arbitrarily between increments from many
//!   threads, the sum of per-tick deltas equals the number of
//!   increments; nothing is lost or double-counted.
//! * **Recorder**: ring events are never torn — every event snapshotted
//!   mid-hammer (and after) is internally consistent, with the payload
//!   matching the invariant each writer encoded into its events.
//!
//! Both run on private instances (`Registry::default()`,
//! `Recorder::with_capacity`) so they neither perturb nor race the
//! process-global pipeline other tests use.

use fieldrep_obs::recorder::{EventKind, Recorder};
use fieldrep_obs::{IoCounts, Registry, Timeline};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

const THREADS: usize = 8;
const INCREMENTS_PER_THREAD: u64 = 20_000;
const EVENTS_PER_THREAD: u64 = 5_000;
const RING_CAPACITY: usize = 512;

#[test]
fn timeline_ticks_never_lose_or_double_count_counter_deltas() {
    let reg = Arc::new(Registry::default());
    let timeline = Arc::new(Mutex::new(Timeline::new(256)));
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(THREADS + 1));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                let c = reg.counter("hammer.increments");
                start.wait();
                for _ in 0..INCREMENTS_PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();

    // The ticker races the workers: every tick snapshots the registry
    // mid-increment, so window boundaries land at arbitrary counts.
    let ticker = {
        let reg = Arc::clone(&reg);
        let timeline = Arc::clone(&timeline);
        let done = Arc::clone(&done);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            start.wait();
            while !done.load(Ordering::Acquire) {
                timeline.lock().unwrap().tick(&reg);
                thread::yield_now();
            }
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    ticker.join().unwrap();

    let mut tl = timeline.lock().unwrap();
    // Close the final window so increments after the last racing tick
    // are captured too.
    tl.tick(&reg);
    let expected = THREADS as u64 * INCREMENTS_PER_THREAD;
    assert_eq!(
        reg.counter("hammer.increments").get(),
        expected,
        "the counter itself must be exact"
    );
    assert_eq!(
        tl.evicted(),
        0,
        "eviction would invalidate the conservation check"
    );
    assert_eq!(
        tl.counter_total("hammer.increments"),
        expected,
        "sum of per-tick deltas must equal the increments: no window \
         may lose or double-count"
    );
    let indexes: Vec<u64> = tl.ticks().iter().map(|t| t.index).collect();
    assert!(
        indexes.windows(2).all(|w| w[1] == w[0] + 1),
        "tick indexes are dense and ordered: {indexes:?}"
    );
    let nanos: Vec<u64> = tl.ticks().iter().map(|t| t.at_nanos).collect();
    assert!(
        nanos.windows(2).all(|w| w[0] <= w[1]),
        "tick timestamps are monotone"
    );
}

/// The invariant each writer encodes: a span-exit event for thread `t`
/// carries `nanos == seq_within_thread` and `io.disk_reads == nanos`,
/// so a torn slot (payload from one write, header from another) is
/// detectable from the event alone.
fn coherent(kind: &EventKind) -> bool {
    match kind {
        EventKind::SpanExit { nanos, io } => io.disk_reads == *nanos,
        _ => false,
    }
}

#[test]
fn recorder_ring_events_are_never_torn_under_contention() {
    let rec = Arc::new(Recorder::with_capacity(RING_CAPACITY));
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(THREADS + 1));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let rec = Arc::clone(&rec);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for i in 0..EVENTS_PER_THREAD {
                    let io = IoCounts {
                        disk_reads: i,
                        ..IoCounts::default()
                    };
                    rec.record(
                        &format!("hammer.writer{t}"),
                        EventKind::SpanExit { nanos: i, io },
                    );
                }
            })
        })
        .collect();

    // A reader snapshots the ring while writers overwrite it: every
    // observed event must already be whole.
    let reader = {
        let rec = Arc::clone(&rec);
        let done = Arc::clone(&done);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            start.wait();
            let mut snapshots = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                for e in rec.events() {
                    assert!(coherent(&e.kind), "torn event observed mid-hammer: {e:?}");
                }
                snapshots += 1;
                if finished {
                    break;
                }
                thread::yield_now();
            }
            snapshots
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "the reader must have raced the writers");

    let expected = THREADS as u64 * EVENTS_PER_THREAD;
    assert_eq!(
        rec.recorded_total(),
        expected,
        "every record() got a unique sequence number"
    );
    let events = rec.events();
    assert_eq!(
        events.len(),
        RING_CAPACITY,
        "the ring is full after {expected} events"
    );
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), RING_CAPACITY, "sequence numbers are unique");
    assert!(
        seqs.iter().all(|&s| s < expected),
        "no sequence number from the future"
    );
    for e in &events {
        assert!(coherent(&e.kind), "torn event in the final ring: {e:?}");
        assert!(
            e.name.starts_with("hammer.writer"),
            "foreign event in a private ring: {e:?}"
        );
    }
}
