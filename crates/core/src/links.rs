//! Link objects and inverted-path link maintenance (§4.1).
//!
//! A *link object* is "little more than a collection of OIDs" (§4.1): for
//! a target object `D` and a link `Emp1.dept⁻¹`, it holds the sorted OIDs
//! of the `Emp1` objects that reference `D`. Link objects live in a
//! separate file per link so the clustering of the referenced set is not
//! disrupted, and the target object stores a `(link-OID, link-ID)` pair —
//! our `Annotation::LinkRef` — to find it.
//!
//! The paper notes that "each link object can contain a large number of
//! OIDs, and can be quite large as a result" (§4.1) — EXODUS supported
//! multi-page objects. Our storage records are page-bounded, so a link
//! store is a **chain of chunks**: sorted OID runs in ascending order,
//! each chunk one record, linked head → tail. The head chunk's OID is
//! what the `(link-OID, link-ID)` pair references and never changes.
//!
//! The §4.3.1 optimization is implemented: when a level-0 link store
//! would hold at most `DbConfig::inline_link_threshold` OIDs, the OIDs
//! are stored inline in the target object instead
//! (`Annotation::InlineLink`) and the link store is elided. The
//! representation is canonical: crossing the threshold in either
//! direction converts.
//!
//! On-disk chunk payload:
//!
//! ```text
//! [level u8] [count u16] [next chunk OID, 8 bytes] [member OIDs, sorted]
//! ```

use crate::error::Result;
use crate::objects::{read_object, write_object, LINK_TAG};
use fieldrep_catalog::{Catalog, LinkDef};
use fieldrep_model::{Annotation, Object};
use fieldrep_storage::{HeapFile, Oid, StorageManager, MAX_RECORD_PAYLOAD};

/// Bytes of chunk header (level + count + next pointer).
pub const CHUNK_HEADER: usize = 1 + 2 + 8;
/// Maximum member OIDs per chunk (everything must fit one record).
pub const MAX_CHUNK_MEMBERS: usize = (MAX_RECORD_PAYLOAD - CHUNK_HEADER) / 8; // 503

/// Encode one chunk.
pub fn encode_chunk(level: u8, next: Option<Oid>, members: &[Oid]) -> Vec<u8> {
    debug_assert!(members.len() <= MAX_CHUNK_MEMBERS, "chunk overflow");
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    let mut out = Vec::with_capacity(CHUNK_HEADER + members.len() * 8);
    out.push(level);
    out.extend_from_slice(&(members.len() as u16).to_le_bytes());
    out.extend_from_slice(&next.unwrap_or(Oid::NULL).to_bytes());
    for m in members {
        out.extend_from_slice(&m.to_bytes());
    }
    out
}

/// Decode one chunk into `(level, next, members)`.
pub fn decode_chunk(b: &[u8]) -> (u8, Option<Oid>, Vec<Oid>) {
    let level = b[0];
    let n = u16::from_le_bytes([b[1], b[2]]) as usize;
    let next = Oid::from_bytes(&b[3..11]);
    let next = (!next.is_null()).then_some(next);
    let mut members = Vec::with_capacity(n);
    for i in 0..n {
        members.push(Oid::from_bytes(
            &b[CHUNK_HEADER + i * 8..CHUNK_HEADER + 8 + i * 8],
        ));
    }
    (level, next, members)
}

/// Create a (possibly multi-chunk) link store holding `members` (sorted);
/// returns the head chunk's OID. Chunks are written tail-first so each
/// can point at its successor.
pub fn create_link_store(sm: &StorageManager, link: &LinkDef, members: &[Oid]) -> Result<Oid> {
    let hf = HeapFile::open(link.file);
    let chunks: Vec<&[Oid]> = members.chunks(MAX_CHUNK_MEMBERS).collect();
    let mut next: Option<Oid> = None;
    // Write from the last chunk backwards; the head is written last. (For
    // the common single-chunk case this is one insert.)
    for chunk in chunks.iter().rev() {
        let oid = hf.rec_insert(sm, LINK_TAG, &encode_chunk(link.level as u8, next, chunk))?;
        next = Some(oid);
    }
    // An empty member list still gets one (empty) head chunk.
    match next {
        Some(h) => Ok(h),
        None => Ok(hf.rec_insert(sm, LINK_TAG, &encode_chunk(link.level as u8, None, &[]))?),
    }
}

/// Read every member of the link store headed at `head`, in sorted order.
/// While walking the chunk chain, the next chunk's page is prefetched
/// ahead of decoding the current one, so multi-chunk traversal overlaps
/// its reads (and they count as prefetch hits, not pool misses, when the
/// chunk is actually consumed).
pub fn read_link_store(sm: &StorageManager, link: &LinkDef, head: Oid) -> Result<Vec<Oid>> {
    let hf = HeapFile::open(link.file);
    let mut out = Vec::new();
    let mut cur = Some(head);
    while let Some(oid) = cur {
        let (tag, payload) = hf.read(sm, oid)?;
        debug_assert_eq!(tag, LINK_TAG);
        let (_, next, members) = decode_chunk(&payload);
        if let Some(n) = next {
            if n.page_id() != oid.page_id() {
                sm.prefetch_pages(&[n.page_id()])?;
            }
        }
        out.extend(members);
        cur = next;
    }
    Ok(out)
}

/// Find the link annotation for `link_id` in an object.
fn find_link_ann(obj: &Object, link_id: u8) -> Option<usize> {
    obj.annotations.iter().position(|a| {
        matches!(a,
            Annotation::LinkRef { link, .. } | Annotation::InlineLink { link, .. }
                if *link == link_id)
    })
}

/// Outcome of a [`link_remove`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoveOutcome {
    /// The member was present and has been removed.
    pub removed: bool,
    /// After the call, the target has no members for this link (its link
    /// store, if any, was deleted and its annotation dropped).
    pub now_empty: bool,
}

/// The members of `target`'s link store for `link` (empty if none).
/// `target_obj` must be the decoded target object.
pub fn link_members(sm: &StorageManager, target_obj: &Object, link: &LinkDef) -> Result<Vec<Oid>> {
    match find_link_ann(target_obj, link.id.0) {
        None => Ok(Vec::new()),
        Some(i) => match &target_obj.annotations[i] {
            Annotation::InlineLink { oids, .. } => Ok(oids.clone()),
            Annotation::LinkRef { oid, .. } => read_link_store(sm, link, *oid),
            _ => unreachable!(),
        },
    }
}

/// Ensure `member` appears in `target`'s link store for `link`.
/// Idempotent: returns `true` if the member was newly added.
pub fn link_add(
    sm: &StorageManager,
    cat: &Catalog,
    link: &LinkDef,
    target: Oid,
    member: Oid,
    inline_threshold: usize,
) -> Result<bool> {
    let mut obj = read_object(sm, cat, target)?;
    let (added, dirty) = link_add_obj(sm, link, target, &mut obj, member, inline_threshold)?;
    if dirty {
        write_object(sm, cat, target, &obj)?;
    }
    Ok(added)
}

/// As [`link_add`], but operates on an already-loaded target object.
/// Returns `(member_added, obj_dirty)`; the caller must write `obj` back
/// when `obj_dirty` is true.
pub fn link_add_obj(
    sm: &StorageManager,
    link: &LinkDef,
    _target: Oid,
    obj: &mut Object,
    member: Oid,
    inline_threshold: usize,
) -> Result<(bool, bool)> {
    let use_inline = inline_threshold > 0 && link.level == 0;
    match find_link_ann(obj, link.id.0) {
        None => {
            if use_inline {
                obj.annotations.push(Annotation::InlineLink {
                    link: link.id.0,
                    oids: vec![member],
                });
            } else {
                let head = create_link_store(sm, link, &[member])?;
                obj.annotations.push(Annotation::LinkRef {
                    link: link.id.0,
                    oid: head,
                });
            }
            Ok((true, true))
        }
        Some(i) => match obj.annotations[i].clone() {
            Annotation::InlineLink { mut oids, .. } => match oids.binary_search(&member) {
                Ok(_) => Ok((false, false)),
                Err(pos) => {
                    oids.insert(pos, member);
                    if oids.len() > inline_threshold {
                        // Grow out of inline form into a link store.
                        let head = create_link_store(sm, link, &oids)?;
                        obj.annotations[i] = Annotation::LinkRef {
                            link: link.id.0,
                            oid: head,
                        };
                    } else {
                        obj.annotations[i] = Annotation::InlineLink {
                            link: link.id.0,
                            oids,
                        };
                    }
                    Ok((true, true))
                }
            },
            Annotation::LinkRef { oid: head, .. } => {
                let added = chain_insert(sm, link, head, member)?;
                Ok((added, false))
            }
            _ => unreachable!(),
        },
    }
}

/// Insert `member` into the chunk chain headed at `head`. Returns `true`
/// if it was not already present. Splits full chunks; the head OID never
/// changes.
fn chain_insert(sm: &StorageManager, link: &LinkDef, head: Oid, member: Oid) -> Result<bool> {
    let hf = HeapFile::open(link.file);
    let mut cur = head;
    loop {
        let (_, payload) = hf.read(sm, cur)?;
        let (level, next, mut members) = decode_chunk(&payload);
        // Does the member belong in this chunk? Yes if it sorts before or
        // at this chunk's maximum, or if this is the last chunk.
        let belongs = match (members.last(), next) {
            (_, None) => true,
            (Some(max), _) if member <= *max => true,
            (None, _) => true, // empty head chunk
            _ => false,
        };
        if !belongs {
            cur = next.expect("non-tail chunk has a successor");
            continue;
        }
        match members.binary_search(&member) {
            Ok(_) => return Ok(false),
            Err(pos) => members.insert(pos, member),
        }
        if members.len() <= MAX_CHUNK_MEMBERS {
            hf.rec_update(sm, cur, &encode_chunk(level, next, &members))?;
        } else {
            // Split: upper half moves to a new chunk after this one.
            let upper = members.split_off(members.len() / 2);
            let new_chunk = hf.rec_insert(sm, LINK_TAG, &encode_chunk(level, next, &upper))?;
            hf.rec_update(sm, cur, &encode_chunk(level, Some(new_chunk), &members))?;
        }
        return Ok(true);
    }
}

/// Remove `member` from `target`'s link store for `link` (if present).
/// Deletes emptied stores and annotations; shrinks back to inline form
/// when the count falls to the threshold.
pub fn link_remove(
    sm: &StorageManager,
    cat: &Catalog,
    link: &LinkDef,
    target: Oid,
    member: Oid,
    inline_threshold: usize,
) -> Result<RemoveOutcome> {
    let mut obj = read_object(sm, cat, target)?;
    let (outcome, dirty) = link_remove_obj(sm, link, &mut obj, member, inline_threshold)?;
    if dirty {
        write_object(sm, cat, target, &obj)?;
    }
    Ok(outcome)
}

/// As [`link_remove`], but on a loaded object. Returns the outcome and
/// whether `obj` changed (caller must write it back).
pub fn link_remove_obj(
    sm: &StorageManager,
    link: &LinkDef,
    obj: &mut Object,
    member: Oid,
    inline_threshold: usize,
) -> Result<(RemoveOutcome, bool)> {
    let use_inline = inline_threshold > 0 && link.level == 0;
    match find_link_ann(obj, link.id.0) {
        None => Ok((
            RemoveOutcome {
                removed: false,
                now_empty: true,
            },
            false,
        )),
        Some(i) => match obj.annotations[i].clone() {
            Annotation::InlineLink { mut oids, .. } => {
                let removed = match oids.binary_search(&member) {
                    Ok(pos) => {
                        oids.remove(pos);
                        true
                    }
                    Err(_) => false,
                };
                let now_empty = oids.is_empty();
                if now_empty {
                    obj.annotations.remove(i);
                } else if removed {
                    obj.annotations[i] = Annotation::InlineLink {
                        link: link.id.0,
                        oids,
                    };
                }
                Ok((RemoveOutcome { removed, now_empty }, removed || now_empty))
            }
            Annotation::LinkRef { oid: head, .. } => {
                let (removed, remaining) = chain_remove(sm, link, head, member)?;
                if remaining == 0 {
                    // "If there are no longer any OIDs in the link object,
                    // it is deleted" (§4.1.1). chain_remove already
                    // deleted the chunks; drop the annotation.
                    obj.annotations.remove(i);
                    return Ok((
                        RemoveOutcome {
                            removed,
                            now_empty: true,
                        },
                        true,
                    ));
                }
                if removed && use_inline && remaining <= inline_threshold {
                    // Shrink back to inline form (§4.3.1).
                    let members = read_link_store(sm, link, head)?;
                    destroy_chain(sm, link, head)?;
                    obj.annotations[i] = Annotation::InlineLink {
                        link: link.id.0,
                        oids: members,
                    };
                    return Ok((
                        RemoveOutcome {
                            removed,
                            now_empty: false,
                        },
                        true,
                    ));
                }
                Ok((
                    RemoveOutcome {
                        removed,
                        now_empty: false,
                    },
                    false,
                ))
            }
            _ => unreachable!(),
        },
    }
}

/// Remove `member` from the chain headed at `head`. Returns
/// `(removed, remaining_total)`. Emptied non-head chunks are unlinked and
/// deleted; an emptied head absorbs its successor (so the head OID stays
/// stable) or — if it was the only chunk — is deleted entirely (the
/// caller drops the annotation).
fn chain_remove(
    sm: &StorageManager,
    link: &LinkDef,
    head: Oid,
    member: Oid,
) -> Result<(bool, usize)> {
    let hf = HeapFile::open(link.file);
    let mut removed = false;
    let mut remaining = 0usize;
    let mut prev: Option<(Oid, u8, Option<Oid>, Vec<Oid>)> = None; // chunk before current
    let mut cur = Some(head);
    while let Some(coid) = cur {
        let (_, payload) = hf.read(sm, coid)?;
        let (level, next, mut members) = decode_chunk(&payload);
        if !removed {
            if let Ok(pos) = members.binary_search(&member) {
                members.remove(pos);
                removed = true;
                if members.is_empty() {
                    if coid == head {
                        match next {
                            Some(succ) => {
                                // Absorb the successor into the head.
                                let (_, spayload) = hf.read(sm, succ)?;
                                let (slevel, snext, smembers) = decode_chunk(&spayload);
                                hf.rec_update(sm, coid, &encode_chunk(slevel, snext, &smembers))?;
                                hf.rec_delete(sm, succ)?;
                                remaining += smembers.len();
                                cur = snext;
                                prev = Some((coid, slevel, snext, smembers));
                                continue;
                            }
                            None => {
                                hf.rec_delete(sm, coid)?;
                                return Ok((true, remaining));
                            }
                        }
                    } else {
                        // Unlink this chunk from its predecessor.
                        let (poid, plevel, _pnext, pmembers) =
                            prev.clone().expect("non-head chunk has a predecessor");
                        hf.rec_update(sm, poid, &encode_chunk(plevel, next, &pmembers))?;
                        hf.rec_delete(sm, coid)?;
                        cur = next;
                        // prev stays the same.
                        continue;
                    }
                } else {
                    hf.rec_update(sm, coid, &encode_chunk(level, next, &members))?;
                }
            }
        }
        remaining += members.len();
        prev = Some((coid, level, next, members));
        cur = next;
    }
    Ok((removed, remaining))
}

/// Delete every chunk of a chain.
fn destroy_chain(sm: &StorageManager, link: &LinkDef, head: Oid) -> Result<()> {
    let hf = HeapFile::open(link.file);
    let mut cur = Some(head);
    while let Some(coid) = cur {
        let (_, payload) = hf.read(sm, coid)?;
        let (_, next, _) = decode_chunk(&payload);
        hf.rec_delete(sm, coid)?;
        cur = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_storage::FileId;

    #[test]
    fn chunk_codec_roundtrip() {
        let members = vec![
            Oid::new(FileId(1), 0, 0),
            Oid::new(FileId(1), 0, 5),
            Oid::new(FileId(1), 3, 1),
        ];
        let next = Some(Oid::new(FileId(9), 7, 7));
        let enc = encode_chunk(2, next, &members);
        let (level, n, back) = decode_chunk(&enc);
        assert_eq!(level, 2);
        assert_eq!(n, next);
        assert_eq!(back, members);
        // Size: header + 8 per member — the paper's l = O(1) + f·sizeof(OID).
        assert_eq!(enc.len(), CHUNK_HEADER + 3 * 8);
    }

    #[test]
    fn empty_chunk_codec() {
        let enc = encode_chunk(0, None, &[]);
        let (level, next, back) = decode_chunk(&enc);
        assert_eq!(level, 0);
        assert_eq!(next, None);
        assert!(back.is_empty());
    }

    #[test]
    fn chunk_capacity() {
        assert_eq!(MAX_CHUNK_MEMBERS, 503);
        let members: Vec<Oid> = (0..MAX_CHUNK_MEMBERS as u32)
            .map(|i| Oid::new(FileId(1), i, 0))
            .collect();
        let enc = encode_chunk(0, None, &members);
        assert!(enc.len() <= MAX_RECORD_PAYLOAD);
    }
}
