//! Collapsed inverted paths (§4.3.3, Figure 6).
//!
//! For a 2-level path `Emp1.dept.org.name`, the uncollapsed inverted path
//! keeps two links (`Emp1.dept⁻¹` and `dept.org⁻¹`); a terminal update
//! traverses both. The *collapsed* form fuses them into one link
//! `Emp1.org⁻¹` whose link store maps each terminal object `O` directly
//! to the source OIDs — each entry **tagged** with the intermediate
//! object it travels through: "the OIDs … would have to be tagged in some
//! way to indicate their association with D. The tags would be needed to
//! handle updates to D.org."
//!
//! Trade-offs, exactly as §4.3.3 lists them: terminal updates reach the
//! sources through a single link level, but intermediate re-targets must
//! *move* all tagged entries (instead of one OID), and the collapsed link
//! cannot be shared with ordinary links.
//!
//! Chunked on-disk entry format (16 bytes per entry, sorted by source):
//!
//! ```text
//! [0xCC] [count u16] [next chunk OID, 8B] [(src OID 8B, via OID 8B)…]
//! ```

use crate::error::Result;
use crate::objects::LINK_TAG;
use fieldrep_catalog::LinkDef;
use fieldrep_model::{Annotation, Object};
use fieldrep_storage::{HeapFile, Oid, StorageManager, MAX_RECORD_PAYLOAD};

/// Marker byte distinguishing collapsed chunks from ordinary link chunks.
pub const COLLAPSED_MARK: u8 = 0xCC;
/// Chunk header bytes.
pub const CHUNK_HEADER: usize = 1 + 2 + 8;
/// Maximum `(src, via)` pairs per chunk.
pub const MAX_CHUNK_PAIRS: usize = (MAX_RECORD_PAYLOAD - CHUNK_HEADER) / 16; // 251

/// One tagged entry: the source object and the intermediate it goes
/// through.
pub type TaggedEntry = (Oid, Oid);

/// Encode one chunk of a collapsed store.
pub fn encode_chunk(next: Option<Oid>, entries: &[TaggedEntry]) -> Vec<u8> {
    debug_assert!(entries.len() <= MAX_CHUNK_PAIRS);
    debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "sorted by src");
    let mut out = Vec::with_capacity(CHUNK_HEADER + entries.len() * 16);
    out.push(COLLAPSED_MARK);
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    out.extend_from_slice(&next.unwrap_or(Oid::NULL).to_bytes());
    for (src, via) in entries {
        out.extend_from_slice(&src.to_bytes());
        out.extend_from_slice(&via.to_bytes());
    }
    out
}

/// Decode one chunk into `(next, entries)`.
pub fn decode_chunk(b: &[u8]) -> (Option<Oid>, Vec<TaggedEntry>) {
    debug_assert_eq!(b[0], COLLAPSED_MARK, "not a collapsed chunk");
    let n = u16::from_le_bytes([b[1], b[2]]) as usize;
    let next = Oid::from_bytes(&b[3..11]);
    let next = (!next.is_null()).then_some(next);
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let off = CHUNK_HEADER + i * 16;
        entries.push((
            Oid::from_bytes(&b[off..off + 8]),
            Oid::from_bytes(&b[off + 8..off + 16]),
        ));
    }
    (next, entries)
}

/// Create a collapsed store from entries sorted by source OID; returns the
/// head chunk OID (stable for the store's lifetime).
pub fn create_store(sm: &StorageManager, link: &LinkDef, entries: &[TaggedEntry]) -> Result<Oid> {
    let hf = HeapFile::open(link.file);
    let chunks: Vec<&[TaggedEntry]> = entries.chunks(MAX_CHUNK_PAIRS).collect();
    let mut next = None;
    for chunk in chunks.iter().rev() {
        let oid = hf.rec_insert(sm, LINK_TAG, &encode_chunk(next, chunk))?;
        next = Some(oid);
    }
    match next {
        Some(h) => Ok(h),
        None => Ok(hf.rec_insert(sm, LINK_TAG, &encode_chunk(None, &[]))?),
    }
}

/// Read every entry of a collapsed store, sorted by source.
pub fn read_store(sm: &StorageManager, link: &LinkDef, head: Oid) -> Result<Vec<TaggedEntry>> {
    let hf = HeapFile::open(link.file);
    let mut out = Vec::new();
    let mut cur = Some(head);
    while let Some(oid) = cur {
        let (_, payload) = hf.read(sm, oid)?;
        let (next, entries) = decode_chunk(&payload);
        out.extend(entries);
        cur = next;
    }
    Ok(out)
}

/// Find the collapsed-store head for `link_id` on a terminal object.
pub fn find_store(obj: &Object, link_id: u8) -> Option<Oid> {
    obj.annotations.iter().find_map(|a| match a {
        Annotation::LinkRef { link, oid } if *link == link_id => Some(*oid),
        _ => None,
    })
}

/// All entries of `terminal_obj`'s collapsed store for `link` (empty if
/// none).
pub fn members(
    sm: &StorageManager,
    terminal_obj: &Object,
    link: &LinkDef,
) -> Result<Vec<TaggedEntry>> {
    match find_store(terminal_obj, link.id.0) {
        None => Ok(Vec::new()),
        Some(head) => read_store(sm, link, head),
    }
}

/// Rewrite a whole store in place (head OID preserved): used by the
/// mutation helpers below. Deletes surplus chunks / allocates new ones as
/// needed.
fn rewrite_store(
    sm: &StorageManager,
    link: &LinkDef,
    head: Oid,
    entries: &[TaggedEntry],
) -> Result<()> {
    let hf = HeapFile::open(link.file);
    // Collect the existing chain.
    let mut chain = vec![head];
    {
        let mut cur = head;
        loop {
            let (_, payload) = hf.read(sm, cur)?;
            let (next, _) = decode_chunk(&payload);
            match next {
                Some(n) => {
                    chain.push(n);
                    cur = n;
                }
                None => break,
            }
        }
    }
    let chunks: Vec<&[TaggedEntry]> = if entries.is_empty() {
        vec![&[][..]]
    } else {
        entries.chunks(MAX_CHUNK_PAIRS).collect()
    };
    // Allocate extra chunk records if the new content needs more.
    while chain.len() < chunks.len() {
        let oid = hf.rec_insert(sm, LINK_TAG, &encode_chunk(None, &[]))?;
        chain.push(oid);
    }
    // Free surplus records (never the head).
    while chain.len() > chunks.len().max(1) {
        let victim = chain.pop().unwrap();
        hf.rec_delete(sm, victim)?;
    }
    // Write chunks front to back with correct next pointers.
    for (i, chunk) in chunks.iter().enumerate() {
        let next = chain.get(i + 1).copied();
        hf.rec_update(sm, chain[i], &encode_chunk(next, chunk))?;
    }
    Ok(())
}

/// Insert `(src, via)` into the store headed at `head` (idempotent on
/// `src`). Returns `true` if newly added.
pub fn store_add(
    sm: &StorageManager,
    link: &LinkDef,
    head: Oid,
    entry: TaggedEntry,
) -> Result<bool> {
    let mut entries = read_store(sm, link, head)?;
    match entries.binary_search_by_key(&entry.0, |e| e.0) {
        Ok(pos) => {
            if entries[pos].1 == entry.1 {
                return Ok(false);
            }
            entries[pos].1 = entry.1; // re-tag (source re-routed)
        }
        Err(pos) => entries.insert(pos, entry),
    }
    rewrite_store(sm, link, head, &entries)?;
    Ok(true)
}

/// Remove the entry for `src`. Returns `(removed_via, remaining_total,
/// remaining_with_same_via)`.
pub fn store_remove(
    sm: &StorageManager,
    link: &LinkDef,
    head: Oid,
    src: Oid,
) -> Result<(Option<Oid>, usize, usize)> {
    let mut entries = read_store(sm, link, head)?;
    let removed = match entries.binary_search_by_key(&src, |e| e.0) {
        Ok(pos) => Some(entries.remove(pos).1),
        Err(_) => None,
    };
    let remaining = entries.len();
    let same_via = removed
        .map(|v| entries.iter().filter(|(_, via)| *via == v).count())
        .unwrap_or(0);
    if removed.is_some() {
        if remaining == 0 {
            // Caller deletes the store + annotation.
            destroy_store(sm, link, head)?;
        } else {
            rewrite_store(sm, link, head, &entries)?;
        }
    }
    Ok((removed, remaining, same_via))
}

/// Remove every entry tagged `via`, returning the source OIDs (sorted).
pub fn store_remove_tagged(
    sm: &StorageManager,
    link: &LinkDef,
    head: Oid,
    via: Oid,
) -> Result<(Vec<Oid>, usize)> {
    let entries = read_store(sm, link, head)?;
    let (moved, kept): (Vec<TaggedEntry>, Vec<TaggedEntry>) =
        entries.into_iter().partition(|(_, v)| *v == via);
    let remaining = kept.len();
    if !moved.is_empty() {
        if kept.is_empty() {
            destroy_store(sm, link, head)?;
        } else {
            rewrite_store(sm, link, head, &kept)?;
        }
    }
    Ok((moved.into_iter().map(|(s, _)| s).collect(), remaining))
}

/// Number of entries tagged `via`.
pub fn count_tagged(sm: &StorageManager, link: &LinkDef, head: Oid, via: Oid) -> Result<usize> {
    Ok(read_store(sm, link, head)?
        .iter()
        .filter(|(_, v)| *v == via)
        .count())
}

/// Delete every chunk of a store.
pub fn destroy_store(sm: &StorageManager, link: &LinkDef, head: Oid) -> Result<()> {
    let hf = HeapFile::open(link.file);
    let mut cur = Some(head);
    while let Some(oid) = cur {
        let (_, payload) = hf.read(sm, oid)?;
        let (next, _) = decode_chunk(&payload);
        hf.rec_delete(sm, oid)?;
        cur = next;
    }
    Ok(())
}

/// Find whether an object carries the `CollapsedVia` marker for `link`.
pub fn has_via_marker(obj: &Object, link_id: u8) -> bool {
    obj.annotations
        .iter()
        .any(|a| matches!(a, Annotation::CollapsedVia { link } if *link == link_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_storage::FileId;

    #[test]
    fn chunk_codec_roundtrip() {
        let entries = vec![
            (Oid::new(FileId(1), 0, 0), Oid::new(FileId(2), 5, 5)),
            (Oid::new(FileId(1), 0, 3), Oid::new(FileId(2), 5, 5)),
            (Oid::new(FileId(1), 1, 0), Oid::new(FileId(2), 6, 0)),
        ];
        let next = Some(Oid::new(FileId(9), 1, 1));
        let enc = encode_chunk(next, &entries);
        let (n, back) = decode_chunk(&enc);
        assert_eq!(n, next);
        assert_eq!(back, entries);
        assert_eq!(enc.len(), CHUNK_HEADER + 3 * 16);
    }

    #[test]
    fn pair_capacity() {
        assert_eq!(MAX_CHUNK_PAIRS, 251);
    }
}
