//! Concurrent transactions: snapshot reads + OID-ordered write locking.
//!
//! The paper's replication maintenance makes concurrency hard in one
//! specific way: an update to a shared field fans out through the
//! inverted path's link objects to `f` replicas, so the atomic unit of a
//! write is not one object but the whole *fan-out closure* — the updated
//! object, the chain nodes whose links are rewired, every source object
//! whose hidden values are re-materialised (in-place, §4.1.3), and the
//! shared replica object (separate, §5.2). This module makes that unit
//! atomic without ever blocking readers:
//!
//! * **Writers** ([`Database::update_txn`]) compute the closure with
//!   [`Database::write_footprint`] (a read-only mirror of the
//!   [`propagate`](crate::propagate) dispatch), then acquire a per-OID
//!   write lock on every member **in globally sorted OID order** through
//!   the single blessed helper [`TxnManager::lock_sorted`]. Sorted
//!   acquisition over a total order makes deadlock impossible (every
//!   wait edge points from a smaller held OID to a larger wanted one, so
//!   the wait-for graph is acyclic); lint rule L4 statically enforces
//!   that no other call site acquires a raw OID lock. Because the
//!   closure is discovered by traversing the very structures concurrent
//!   writers mutate, it is recomputed *under* the locks and the
//!   acquisition retried (counted as `txn.conflict`) until the locked
//!   set covers it. Sorted-OID order is also the engine's batched-I/O
//!   order ([`fieldrep_storage::oid_page_chunks`]), so locks are taken
//!   in the same order pages are fetched.
//! * **Readers** ([`Database::snapshot_path_values`],
//!   [`Database::snapshot_path_check`], [`Database::snapshot_get`])
//!   never take locks. Each locked OID carries a seqlock-style version
//!   that is odd while a writer holds it and bumped again on release;
//!   readers capture the versions of the objects whose bytes they
//!   consume (source, shared replica, terminal), read optimistically,
//!   and retry (`txn.snapshot_retry`) if any version moved. Versions are
//!   monotonic — lock-table entries are never removed — so a validated
//!   read is a true point-in-time snapshot: it observed no mid-flight
//!   ripple, which is exactly the "no torn replicas" invariant the
//!   stress harness asserts.
//!
//! Two scope notes. Deferred-propagation paths are *not* synced by
//! snapshot reads (syncing writes, and a reader must not write); they
//! serve whatever is materialised, which is the documented semantics of
//! §8 deferral. And B-tree maintenance has page-, not OID-granular
//! state, so while any index exists, transactional updates additionally
//! serialize on one coarse guard — the paper's experiments (and the
//! concurrent bench) run without secondary indexes.

use crate::attach::{collect_sources, read_path_values, terminal_values, walk_chain};
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::propagate::suffix_chain;
use crate::replicas::{find_anchor, find_replica_ref};
use fieldrep_catalog::{GroupId, LinkId, PathId, RepPathDef, Strategy};
use fieldrep_model::{Annotation, Object, Value};
use fieldrep_obs::{metrics, names as obs_names};
use fieldrep_storage::{lockorder, Oid};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Upper bound on one lock wait (and on one snapshot-read retry loop).
/// Sorted acquisition makes deadlock impossible, so this firing means an
/// ordering bug or a transaction wedged inside its critical section; the
/// stress harness relies on it to fail fast instead of hanging.
const DEADLOCK_WATCHDOG: Duration = Duration::from_secs(10);

/// Lock-table stripes (power of two; each stripe is a mutex-guarded map).
const LOCK_STRIPES: usize = 64;

/// Re-acquisition attempts before a writer gives up on a closure that
/// keeps changing under it.
const MAX_LOCK_ATTEMPTS: usize = 32;

/// Process-wide transaction instruments (names in [`obs_names`]).
struct TxnMetrics {
    begin: Arc<metrics::Counter>,
    commit: Arc<metrics::Counter>,
    abort: Arc<metrics::Counter>,
    conflict: Arc<metrics::Counter>,
    lock_wait: Arc<metrics::Counter>,
    snapshot_retry: Arc<metrics::Counter>,
    active: Arc<metrics::Gauge>,
    lockset: Arc<metrics::Histogram>,
}

fn txn_metrics() -> &'static TxnMetrics {
    static METRICS: OnceLock<TxnMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::registry();
        TxnMetrics {
            begin: r.counter(obs_names::TXN_BEGIN),
            commit: r.counter(obs_names::TXN_COMMIT),
            abort: r.counter(obs_names::TXN_ABORT),
            conflict: r.counter(obs_names::TXN_CONFLICT),
            lock_wait: r.counter(obs_names::TXN_LOCK_WAIT),
            snapshot_retry: r.counter(obs_names::TXN_SNAPSHOT_RETRY),
            active: r.gauge(obs_names::TXN_ACTIVE),
            lockset: r.histogram(obs_names::TXN_LOCKSET, &[1, 2, 4, 8, 16, 32, 64, 128, 256]),
        }
    })
}

/// One OID's write lock + seqlock version.
#[derive(Default)]
struct OidLock {
    /// Version: odd while a writer holds the lock, bumped on acquire and
    /// release. Monotonic — entries are never removed from the table —
    /// so a reader can never validate against a recycled version (no
    /// ABA).
    seq: AtomicU64,
    /// Writer mutual exclusion. A spin-then-yield loop rather than a
    /// mutex: guards are stored in a `Vec` across the whole commit, and
    /// critical sections include page I/O, so waiters back off to
    /// `yield_now` quickly.
    held: AtomicBool,
}

impl OidLock {
    /// The one raw lock acquisition in the workspace; only
    /// [`TxnManager::lock_sorted`] may call it (lint rule L4 enforces
    /// this), which is what makes the global acquisition order total.
    fn raw_acquire(&self, oid: Oid) -> Result<bool> {
        if self
            .held
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return Ok(false);
        }
        let start = Instant::now();
        let mut spins = 0u32;
        loop {
            if self
                .held
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(true);
            }
            spins = spins.wrapping_add(1);
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            if spins.is_multiple_of(4096) && start.elapsed() > DEADLOCK_WATCHDOG {
                return Err(DbError::LockTimeout(oid));
            }
        }
    }

    fn raw_release(&self) {
        self.held.store(false, Ordering::Release);
    }
}

/// Striped `Oid → OidLock` table. Entries are created on first write
/// lock and never removed (see [`OidLock::seq`]).
struct LockTable {
    stripes: Vec<Mutex<HashMap<Oid, Arc<OidLock>>>>,
}

impl LockTable {
    fn new() -> Self {
        LockTable {
            stripes: (0..LOCK_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn stripe_of(oid: Oid) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        oid.hash(&mut h);
        (h.finish() as usize) % LOCK_STRIPES
    }

    /// The lock of `oid`, created if absent.
    fn entry(&self, oid: Oid) -> Arc<OidLock> {
        Arc::clone(
            self.stripes[Self::stripe_of(oid)]
                .lock()
                .entry(oid)
                .or_default(),
        )
    }

    /// Current version of `oid` without creating an entry: an OID that
    /// was never write-locked is at version 0.
    fn seq_of(&self, oid: Oid) -> u64 {
        self.stripes[Self::stripe_of(oid)]
            .lock()
            .get(&oid)
            .map_or(0, |l| l.seq.load(Ordering::Acquire))
    }

    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }
}

/// Guard over a sorted set of acquired OID write locks. Dropping it
/// bumps every version to even (ripple complete) and releases the locks.
/// Guard for the coarse index-maintenance mutex; carries the runtime
/// lock-order token (rank [`lockorder::TXN_INDEX_GUARD`]).
pub(crate) struct IndexGuard<'a> {
    _guard: parking_lot::MutexGuard<'a, ()>,
    _order: lockorder::Held,
}

/// The sorted set of per-OID write locks one transactional write
/// holds; releasing it (drop) bumps every member's version to even.
pub struct LockSet {
    oids: Vec<Oid>,
    locks: Vec<Arc<OidLock>>,
    /// Runtime lock-order token for the whole (internally ordered)
    /// seqlock family this set holds.
    _order: lockorder::Held,
}

impl LockSet {
    /// Is every OID of `oids` (sorted or not) covered by this lock set?
    pub fn covers(&self, oids: &[Oid]) -> bool {
        oids.iter().all(|o| self.oids.binary_search(o).is_ok())
    }

    /// Number of locked OIDs.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when nothing is locked.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

impl Drop for LockSet {
    fn drop(&mut self) {
        for l in &self.locks {
            l.seq.fetch_add(1, Ordering::Release); // even: ripple done
            l.raw_release();
        }
    }
}

/// Snapshot of the transaction manager's counters (the `sys.txn` rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnStats {
    /// Transactions currently between begin and commit/abort.
    pub active: u64,
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Write commits that re-acquired a changed lock closure.
    pub conflicts: u64,
    /// Contended OID-lock acquisitions.
    pub lock_waits: u64,
    /// Snapshot reads re-run because a writer raced them.
    pub snapshot_retries: u64,
    /// Committed transactional writes (the global commit epoch).
    pub commit_epoch: u64,
    /// OIDs with a lock-table entry (ever write-locked).
    pub locks_tracked: u64,
}

/// Per-database transaction manager: the OID lock table, the commit
/// epoch, and counters. All methods take `&self`; one manager serves
/// every concurrent thread of its [`Database`].
pub struct TxnManager {
    table: LockTable,
    /// Committed transactional writes. Bumped after every successful
    /// [`Database::update_txn`]; snapshot readers do not need it (they
    /// validate per-OID versions) but `sys.txn` exposes it as the
    /// database's logical write clock.
    epoch: AtomicU64,
    next_id: AtomicU64,
    active: AtomicU64,
    begun: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    conflicts: AtomicU64,
    lock_waits: AtomicU64,
    snapshot_retries: AtomicU64,
    /// Coarse serialization for B-tree maintenance: index pages have no
    /// per-OID identity, so while any index exists, transactional
    /// updates take this in addition to their OID locks.
    index_guard: Mutex<()>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager {
            table: LockTable::new(),
            epoch: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            active: AtomicU64::new(0),
            begun: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            snapshot_retries: AtomicU64::new(0),
            index_guard: Mutex::new(()),
        }
    }
}

impl TxnManager {
    /// Begin a transaction; returns its id. Transactions are
    /// chained-auto-commit: DML applies as it runs (there is no undo
    /// log, matching the paper's no-recovery scope); what begin/commit
    /// delimit is the statistics window and, for read-only work, the
    /// right to abort.
    pub fn begin(&self) -> u64 {
        self.begun.fetch_add(1, Ordering::Relaxed);
        let now_active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        let m = txn_metrics();
        m.begin.inc();
        m.active.set(now_active as i64);
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Commit transaction `_txn`.
    pub fn commit(&self, _txn: u64) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        let m = txn_metrics();
        m.commit.inc();
        m.active.set(self.dec_active() as i64);
    }

    /// Abort transaction `_txn`. Writes already applied stay applied
    /// (no undo log); [`crate::lang`-level] callers refuse abort after
    /// writes.
    pub fn abort(&self, _txn: u64) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        let m = txn_metrics();
        m.abort.inc();
        m.active.set(self.dec_active() as i64);
    }

    fn dec_active(&self) -> u64 {
        let prev = match self
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            }) {
            Ok(v) | Err(v) => v,
        };
        prev.saturating_sub(1)
    }

    /// Acquire write locks on every OID of `oids` — which **must** be
    /// sorted and deduplicated — in that global order, and bump each
    /// version to odd. This is the only place in the workspace that may
    /// acquire OID locks (lint rule L4): funnelling every acquisition
    /// through one sorted loop is the whole deadlock-freedom argument,
    /// and the order equals the batched-I/O page order because both
    /// derive from the same physical OID sort.
    pub fn lock_sorted(&self, oids: &[Oid]) -> Result<LockSet> {
        if oids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DbError::Unsupported(
                "lock_sorted requires a sorted, deduplicated OID set".into(),
            ));
        }
        // One order token covers the whole family: members are acquired
        // in sorted OID order below, which is the family's internal
        // order (rank ties are legal within it).
        let order = lockorder::acquired(lockorder::OID_SEQLOCK, true, "OidSeqlock");
        let mut locks: Vec<Arc<OidLock>> = Vec::with_capacity(oids.len());
        for &oid in oids {
            let l = self.table.entry(oid);
            match l.raw_acquire(oid) {
                Ok(waited) => {
                    if waited {
                        self.lock_waits.fetch_add(1, Ordering::Relaxed);
                        txn_metrics().lock_wait.inc();
                    }
                    l.seq.fetch_add(1, Ordering::Release); // odd: writer present
                    locks.push(l);
                }
                Err(e) => {
                    // Watchdog fired mid-acquisition: release the prefix.
                    drop(LockSet {
                        oids: oids[..locks.len()].to_vec(),
                        locks,
                        _order: order,
                    });
                    return Err(e);
                }
            }
        }
        txn_metrics().lockset.record(oids.len() as u64);
        Ok(LockSet {
            oids: oids.to_vec(),
            locks,
            _order: order,
        })
    }

    /// Current seqlock version of `oid` (0 if never write-locked; odd
    /// while a writer holds it).
    pub fn seq_of(&self, oid: Oid) -> u64 {
        self.table.seq_of(oid)
    }

    /// The number of committed transactional writes.
    pub fn commit_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn note_commit_applied(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        txn_metrics().conflict.inc();
    }

    pub(crate) fn note_snapshot_retry(&self) {
        self.snapshot_retries.fetch_add(1, Ordering::Relaxed);
        txn_metrics().snapshot_retry.inc();
    }

    /// Counter snapshot (the `sys.txn` virtual table's rows).
    pub fn stats(&self) -> TxnStats {
        TxnStats {
            active: self.active.load(Ordering::Relaxed),
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            snapshot_retries: self.snapshot_retries.load(Ordering::Relaxed),
            commit_epoch: self.commit_epoch(),
            locks_tracked: self.table.len() as u64,
        }
    }
}

/// Ref value → OID, `None` for null/non-ref.
fn as_oid(v: &Value) -> Option<Oid> {
    match v {
        Value::Ref(o) if !o.is_null() => Some(*o),
        _ => None,
    }
}

/// Backoff for optimistic-read retries: spin briefly, then yield.
fn snapshot_backoff(attempt: u32) {
    if attempt < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl Database {
    /// The write-lock closure of `update(oid, changes)`: every OID whose
    /// stored bytes the update may rewrite, plus every source object
    /// whose replicated view of the ripple a snapshot reader validates.
    /// A read-only mirror of the [`crate::propagate`] dispatch — the two
    /// must stay in sync (the recompute-under-locks retry in
    /// [`Database::update_txn`] absorbs races, not omissions).
    ///
    /// Returned sorted and deduplicated, ready for
    /// [`TxnManager::lock_sorted`].
    pub(crate) fn write_footprint(&self, oid: Oid, changes: &[(&str, Value)]) -> Result<Vec<Oid>> {
        let set = self.set_of(oid)?;
        let cat = self.catalog();
        let set_def = cat.set(set).clone();
        let def = cat.type_def(set_def.elem_type).clone();
        let old_obj = self.get(oid)?;

        // Resolve to effective (index, old, new) changes; unknown fields
        // and type errors are left for `update` to surface.
        let mut field_changes: Vec<(usize, Value, Value)> = Vec::new();
        for (name, new) in changes {
            let Some(idx) = def.field_index(name) else {
                continue;
            };
            let old = old_obj.values[idx].clone();
            if old != *new {
                field_changes.push((idx, old, new.clone()));
            }
        }
        let mut fp: BTreeSet<Oid> = BTreeSet::new();
        fp.insert(oid);
        if field_changes.is_empty() {
            return Ok(fp.into_iter().collect());
        }

        // --- Own paths whose first hop changes: both chains, old and new.
        let changed_refs: BTreeSet<usize> = field_changes
            .iter()
            .filter(|(i, _, _)| def.fields[*i].ftype.is_ref())
            .map(|(i, _, _)| *i)
            .collect();
        let own_paths: Vec<RepPathDef> = cat
            .paths_from(set)
            .filter(|p| changed_refs.contains(&p.hops[0]))
            .cloned()
            .collect();
        for p in &own_paths {
            let mut ctx = self.ctx();
            let old_chain = walk_chain(&mut ctx, p, oid, &old_obj)?;
            fp.extend(old_chain.iter().flatten().copied());
            let mut new_obj = old_obj.clone();
            for (i, _, new) in &field_changes {
                new_obj.values[*i] = new.clone();
            }
            let new_chain = walk_chain(&mut ctx, p, oid, &new_obj)?;
            fp.extend(new_chain.iter().flatten().copied());
            if p.strategy == Strategy::Separate {
                let Some(g) = p.group else { continue };
                let group = cat.group(g).clone();
                // The old shared replica (refcount may drop it) and the
                // new terminal's existing replica.
                if let Some((_, roid)) = find_replica_ref(&old_obj, group.id.0) {
                    fp.insert(roid);
                }
                if let Some(t) = new_chain.last().copied().flatten() {
                    let tobj = self.get(t)?;
                    if let Some((_, roid, _)) = find_anchor(&tobj, group.id.0) {
                        fp.insert(roid);
                    }
                }
            }
        }

        // --- This object as a separate-group terminal: the shared replica.
        for a in &old_obj.annotations {
            if let Annotation::ReplicaAnchor {
                group, oid: roid, ..
            } = a
            {
                let gdef = cat.group(GroupId(*group)).clone();
                if field_changes
                    .iter()
                    .any(|(f, _, _)| gdef.fields.contains(f))
                {
                    fp.insert(*roid);
                }
            }
        }

        // --- Link-borne: in-place terminal fan-out + intermediate hops.
        let link_ids: Vec<u8> = old_obj
            .annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::LinkRef { link, .. }
                | Annotation::InlineLink { link, .. }
                | Annotation::CollapsedVia { link } => Some(*link),
                _ => None,
            })
            .collect();
        for (f, old, new) in &field_changes {
            for &l in &link_ids {
                let link = LinkId(l);
                let term_paths: Vec<RepPathDef> = cat
                    .inplace_paths_terminating_at(link, *f)
                    .cloned()
                    .collect();
                for p in term_paths {
                    let mut ctx = self.ctx();
                    fp.extend(collect_sources(&mut ctx, &p, p.links.len() - 1, &old_obj)?);
                }
                let mid_paths: Vec<RepPathDef> =
                    cat.paths_with_intermediate(link, *f).cloned().collect();
                for p in mid_paths {
                    let old_ref = as_oid(old);
                    let new_ref = as_oid(new);
                    if p.collapsed {
                        // §4.3.3 re-target: both holders and every member
                        // of the old holder's tagged store (a superset of
                        // the entries that actually move).
                        fp.extend(old_ref);
                        fp.extend(new_ref);
                        let holder = old_ref.unwrap_or(oid);
                        let hobj = self.get(holder)?;
                        let mut ctx = self.ctx();
                        fp.extend(collect_sources(&mut ctx, &p, 0, &hobj)?);
                        continue;
                    }
                    let Some(lvl) = p.links.iter().position(|x| *x == link) else {
                        continue;
                    };
                    let mut ctx = self.ctx();
                    fp.extend(collect_sources(&mut ctx, &p, lvl, &old_obj)?);
                    let old_chain = suffix_chain(&mut ctx, &p, lvl, oid, old_ref)?;
                    fp.extend(old_chain.iter().flatten().copied());
                    let new_chain = suffix_chain(&mut ctx, &p, lvl, oid, new_ref)?;
                    fp.extend(new_chain.iter().flatten().copied());
                    if p.strategy == Strategy::Separate {
                        if let Some(g) = p.group {
                            let group = cat.group(g).clone();
                            let terminals = [
                                old_chain.last().copied().flatten(),
                                new_chain.last().copied().flatten(),
                            ];
                            for t in terminals.into_iter().flatten() {
                                let tobj = self.get(t)?;
                                if let Some((_, roid, _)) = find_anchor(&tobj, group.id.0) {
                                    fp.insert(roid);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(fp.into_iter().collect())
    }

    /// Concurrent-safe [`Database::update`]: compute the fan-out
    /// closure, lock it in sorted OID order, re-validate under the
    /// locks, apply, and version-bump every member so snapshot readers
    /// observe the ripple atomically. Safe to call from many threads;
    /// writers with disjoint closures run in parallel.
    ///
    /// # Durability errors
    ///
    /// When a WAL is attached and the in-memory apply succeeds but
    /// logging or fsyncing the commit record fails, this returns
    /// [`DbError::CommitNotDurable`]. The update **is** applied (and
    /// will still reach disk through the write-back path); only the
    /// crash-durability guarantee is lost. Any other error means the
    /// update was rejected.
    pub fn update_txn(&self, oid: Oid, changes: &[(&str, Value)]) -> Result<()> {
        let txn = self.txn();
        // B-tree pages have no OID identity: serialize index maintenance
        // coarsely while any index exists.
        let _index_guard = if self.catalog().indexes().next().is_some() {
            Some(txn.index_lock())
        } else {
            None
        };
        let mut fp = self.write_footprint(oid, changes)?;
        for _ in 0..MAX_LOCK_ATTEMPTS {
            let guard = txn.lock_sorted(&fp)?;
            // The closure was discovered without locks; recompute now
            // that the world is frozen. A concurrent commit in between
            // may have rewired links or moved sources.
            let check = self.write_footprint(oid, changes)?;
            if guard.covers(&check) {
                // Durability: hold the WAL apply section across
                // apply+log so the log never interleaves two
                // transactions' page images, then release it *before*
                // the fsync so concurrent commits coalesce into one
                // barrier (group commit).
                let wal = self.sm().wal().cloned();
                let apply_guard = wal.as_ref().map(|w| w.apply_lock());
                // `apply_update`, not `update`: the guard is
                // non-reentrant and we already hold it.
                let result = self.apply_update(oid, changes);
                if result.is_ok() {
                    txn.note_commit_applied();
                    if let Some(w) = &wal {
                        let logged = self.sm().pool().log_txn_commit();
                        drop(apply_guard);
                        // Past this point the update is applied and
                        // versions will publish on guard drop; a logging
                        // or fsync failure is a *durability* failure,
                        // not a rejected update.
                        match logged {
                            Ok(Some(lsn)) => {
                                if let Err(e) = w.sync_to(lsn) {
                                    return Err(DbError::CommitNotDurable(e));
                                }
                            }
                            Ok(None) => {}
                            Err(e) => return Err(DbError::CommitNotDurable(e)),
                        }
                    }
                }
                return result; // guard drop publishes the versions
            }
            txn.note_conflict();
            drop(guard);
            let merged: BTreeSet<Oid> = fp.into_iter().chain(check).collect();
            fp = merged.into_iter().collect();
        }
        Err(DbError::Unsupported(
            "update_txn: write-lock closure kept changing under contention".into(),
        ))
    }

    /// Seqlock-validated snapshot read of one object. Never blocks:
    /// retries (with backoff) while a writer's ripple is in flight.
    pub fn snapshot_get(&self, oid: Oid) -> Result<Object> {
        let txn = self.txn();
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                txn.note_snapshot_retry();
                snapshot_backoff(attempt);
                if attempt.is_multiple_of(1024) && start.elapsed() > DEADLOCK_WATCHDOG {
                    return Err(DbError::LockTimeout(oid));
                }
            }
            attempt = attempt.wrapping_add(1);
            let s1 = txn.seq_of(oid);
            if s1 & 1 == 1 {
                continue;
            }
            let obj = match self.get(oid) {
                Ok(o) => o,
                Err(e) => {
                    if txn.seq_of(oid) != s1 {
                        continue; // torn by a concurrent writer: retry
                    }
                    return Err(e);
                }
            };
            if txn.seq_of(oid) == s1 {
                return Ok(obj);
            }
        }
    }

    /// Snapshot read of one base field by name.
    pub fn snapshot_field(&self, oid: Oid, field: &str) -> Result<Value> {
        let obj = self.snapshot_get(oid)?;
        let def = self.catalog().type_def(obj.type_id);
        Ok(obj.get(def, field)?.clone())
    }

    /// Snapshot read of `path`'s replicated values as seen from `source`
    /// — the query executor's read primitive under concurrency. Consumes
    /// the source object's bytes (in-place / collapsed) or the shared
    /// replica object's (separate), and validates the version of
    /// exactly those OIDs. Deferred paths are *not* synced (a snapshot
    /// reader must not write) and may serve pre-ripple values, which is
    /// the §8 deferral contract.
    pub fn snapshot_path_values(&self, source: Oid, path: PathId) -> Result<Option<Vec<Value>>> {
        let pdef = self.catalog().path(path).clone();
        let group = match (pdef.strategy, pdef.group) {
            (Strategy::Separate, Some(g)) => Some(self.catalog().group(g).clone()),
            _ => None,
        };
        let txn = self.txn();
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                txn.note_snapshot_retry();
                snapshot_backoff(attempt);
                if attempt.is_multiple_of(1024) && start.elapsed() > DEADLOCK_WATCHDOG {
                    return Err(DbError::LockTimeout(source));
                }
            }
            attempt = attempt.wrapping_add(1);
            let io_before = fieldrep_obs::io::snapshot();
            let s1 = txn.seq_of(source);
            if s1 & 1 == 1 {
                continue;
            }
            let obj = match self.get(source) {
                Ok(o) => o,
                Err(e) => {
                    if txn.seq_of(source) != s1 {
                        continue;
                    }
                    return Err(e);
                }
            };
            let mut watch: Vec<(Oid, u64)> = vec![(source, s1)];
            if let Some(g) = &group {
                if let Some((_, roid)) = find_replica_ref(&obj, g.id.0) {
                    let r1 = txn.seq_of(roid);
                    if r1 & 1 == 1 {
                        continue;
                    }
                    watch.push((roid, r1));
                }
            }
            let vals = {
                let mut ctx = self.ctx();
                match read_path_values(&mut ctx, &pdef, &obj) {
                    Ok(v) => v,
                    Err(e) => {
                        if watch.iter().any(|&(o, s)| txn.seq_of(o) != s) {
                            continue;
                        }
                        return Err(e);
                    }
                }
            };
            if watch.iter().all(|&(o, s)| txn.seq_of(o) == s) {
                let pages = (fieldrep_obs::io::snapshot() - io_before).page_touches();
                self.workload()
                    .record_read(&pdef.expr.to_string(), 1, pages);
                return Ok(vals);
            }
        }
    }

    /// One consistent snapshot of both sides of a replication path: the
    /// replicated values visible at `source` and the terminal's true
    /// field values (via the forward chain). The two are read under one
    /// validation window, so `visible == truth` — both `None` on a
    /// broken chain, or equal value lists — is exactly the paper's
    /// replica-consistency invariant; the concurrent stress harness
    /// asserts it under hostile interleavings. (Deferred paths may
    /// legitimately disagree until synced.)
    #[allow(clippy::type_complexity)]
    pub fn snapshot_path_check(
        &self,
        source: Oid,
        path: PathId,
    ) -> Result<(Option<Vec<Value>>, Option<Vec<Value>>)> {
        let pdef = self.catalog().path(path).clone();
        let group = match (pdef.strategy, pdef.group) {
            (Strategy::Separate, Some(g)) => Some(self.catalog().group(g).clone()),
            _ => None,
        };
        let txn = self.txn();
        let start = Instant::now();
        let mut attempt = 0u32;
        'retry: loop {
            if attempt > 0 {
                txn.note_snapshot_retry();
                snapshot_backoff(attempt);
                if attempt.is_multiple_of(1024) && start.elapsed() > DEADLOCK_WATCHDOG {
                    return Err(DbError::LockTimeout(source));
                }
            }
            attempt = attempt.wrapping_add(1);
            let s1 = txn.seq_of(source);
            if s1 & 1 == 1 {
                continue;
            }
            let obj = match self.get(source) {
                Ok(o) => o,
                Err(e) => {
                    if txn.seq_of(source) != s1 {
                        continue;
                    }
                    return Err(e);
                }
            };
            let mut watch: Vec<(Oid, u64)> = vec![(source, s1)];
            if let Some(g) = &group {
                if let Some((_, roid)) = find_replica_ref(&obj, g.id.0) {
                    let r1 = txn.seq_of(roid);
                    if r1 & 1 == 1 {
                        continue;
                    }
                    watch.push((roid, r1));
                }
            }
            let invalidated = |watch: &[(Oid, u64)]| watch.iter().any(|&(o, s)| txn.seq_of(o) != s);
            let (visible, chain) = {
                let mut ctx = self.ctx();
                let visible = match read_path_values(&mut ctx, &pdef, &obj) {
                    Ok(v) => v,
                    Err(e) => {
                        if invalidated(&watch) {
                            continue;
                        }
                        return Err(e);
                    }
                };
                let chain = match walk_chain(&mut ctx, &pdef, source, &obj) {
                    Ok(c) => c,
                    Err(e) => {
                        if invalidated(&watch) {
                            continue;
                        }
                        return Err(e);
                    }
                };
                (visible, chain)
            };
            let truth = match chain.last().copied().flatten() {
                Some(t) => {
                    let t1 = txn.seq_of(t);
                    if t1 & 1 == 1 {
                        continue;
                    }
                    watch.push((t, t1));
                    let tobj = match self.get(t) {
                        Ok(o) => o,
                        Err(e) => {
                            if invalidated(&watch) {
                                continue 'retry;
                            }
                            return Err(e);
                        }
                    };
                    Some(terminal_values(&pdef, &tobj))
                }
                None => None,
            };
            if !invalidated(&watch) {
                return Ok((visible, truth));
            }
        }
    }
}

impl TxnManager {
    /// Take the coarse index-maintenance guard (see
    /// [`TxnManager::index_guard`]).
    pub(crate) fn index_lock(&self) -> IndexGuard<'_> {
        let order = lockorder::acquired(lockorder::TXN_INDEX_GUARD, false, "TxnIndexGuard");
        IndexGuard {
            _guard: self.index_guard.lock(),
            _order: order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, DbConfig};
    use fieldrep_model::{FieldType, TypeDef};

    fn db_with_path(strategy: Strategy) -> (Database, Oid, Vec<Oid>, PathId) {
        let mut db = Database::in_memory(DbConfig {
            pool_pages: 64,
            inline_link_threshold: 0,
        });
        db.define_type(TypeDef::new(
            "DEPT",
            vec![("name", FieldType::Str), ("budget", FieldType::Int)],
        ))
        .unwrap();
        db.define_type(TypeDef::new(
            "EMP",
            vec![
                ("name", FieldType::Str),
                ("salary", FieldType::Int),
                ("dept", FieldType::Ref("DEPT".into())),
            ],
        ))
        .unwrap();
        db.create_set("Dept", "DEPT").unwrap();
        db.create_set("Emp", "EMP").unwrap();
        let d = db
            .insert("Dept", vec![Value::Str("Shoe".into()), Value::Int(100)])
            .unwrap();
        let emps: Vec<Oid> = (0..8)
            .map(|i| {
                db.insert(
                    "Emp",
                    vec![
                        Value::Str(format!("e{i}")),
                        Value::Int(1000 + i),
                        Value::Ref(d),
                    ],
                )
                .unwrap()
            })
            .collect();
        let p = db.replicate("Emp.dept.name", strategy).unwrap();
        (db, d, emps, p)
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<TxnManager>();
    }

    #[test]
    fn lock_sorted_rejects_unsorted_and_duplicate_input() {
        let mgr = TxnManager::default();
        let f = fieldrep_storage::FileId(1);
        let a = Oid::new(f, 0, 0);
        let b = Oid::new(f, 0, 1);
        assert!(mgr.lock_sorted(&[b, a]).is_err());
        assert!(mgr.lock_sorted(&[a, a]).is_err());
        // A failed acquisition must not leave anything locked.
        let g = mgr.lock_sorted(&[a, b]).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn lock_versions_are_odd_while_held_and_bump_by_two() {
        let mgr = TxnManager::default();
        let oid = Oid::new(fieldrep_storage::FileId(1), 3, 4);
        assert_eq!(mgr.seq_of(oid), 0);
        let g = mgr.lock_sorted(&[oid]).unwrap();
        assert_eq!(mgr.seq_of(oid) & 1, 1, "odd while held");
        drop(g);
        assert_eq!(mgr.seq_of(oid), 2, "even after release");
    }

    #[test]
    fn footprint_of_terminal_update_is_the_fanout_closure() {
        let (db, d, emps, _p) = db_with_path(Strategy::InPlace);
        let fp = db
            .write_footprint(d, &[("name", Value::Str("Boots".into()))])
            .unwrap();
        assert!(fp.contains(&d), "updated object");
        for e in &emps {
            assert!(fp.contains(e), "every fan-out source");
        }
        assert!(fp.windows(2).all(|w| w[0] < w[1]), "sorted + deduplicated");
    }

    #[test]
    fn footprint_of_separate_update_includes_the_shared_replica() {
        let (db, d, emps, p) = db_with_path(Strategy::Separate);
        let fp = db
            .write_footprint(d, &[("name", Value::Str("Boots".into()))])
            .unwrap();
        assert!(fp.contains(&d));
        // The shared replica object is versioned; the sources are not
        // rewritten by a separate refresh, but readers discover the
        // replica OID from the source and validate the replica itself.
        let obj = db.get(emps[0]).unwrap();
        let pdef = db.catalog().path(p).clone();
        let g = db.catalog().group(pdef.group.unwrap()).clone();
        let (_, roid) = find_replica_ref(&obj, g.id.0).unwrap();
        assert!(fp.contains(&roid), "shared replica object in closure");
    }

    #[test]
    fn update_txn_propagates_like_plain_update() {
        let (db, d, emps, p) = db_with_path(Strategy::InPlace);
        db.update_txn(d, &[("name", Value::Str("Boots".into()))])
            .unwrap();
        for e in &emps {
            assert_eq!(
                db.path_values(*e, p).unwrap(),
                Some(vec![Value::Str("Boots".into())])
            );
        }
        assert_eq!(db.txn().commit_epoch(), 1);
        let stats = db.txn().stats();
        assert_eq!(stats.conflicts, 0, "single-threaded: no conflicts");
    }

    #[test]
    fn snapshot_reads_match_committed_state() {
        let (db, d, emps, p) = db_with_path(Strategy::Separate);
        assert_eq!(
            db.snapshot_path_values(emps[0], p).unwrap(),
            Some(vec![Value::Str("Shoe".into())])
        );
        db.update_txn(d, &[("name", Value::Str("Boots".into()))])
            .unwrap();
        let (visible, truth) = db.snapshot_path_check(emps[0], p).unwrap();
        assert_eq!(visible, Some(vec![Value::Str("Boots".into())]));
        assert_eq!(visible, truth);
        assert_eq!(
            db.snapshot_field(d, "name").unwrap(),
            Value::Str("Boots".into())
        );
    }

    #[test]
    fn begin_commit_abort_bookkeeping() {
        let db = Database::in_memory(DbConfig::default());
        let t1 = db.txn().begin();
        let t2 = db.txn().begin();
        assert_ne!(t1, t2);
        assert_eq!(db.txn().stats().active, 2);
        db.txn().commit(t1);
        db.txn().abort(t2);
        let s = db.txn().stats();
        assert_eq!((s.active, s.begun, s.committed, s.aborted), (0, 2, 1, 1));
    }

    #[test]
    fn concurrent_writers_and_snapshot_readers_agree() {
        let (db, d, emps, p) = db_with_path(Strategy::InPlace);
        let db = &db;
        let emps = &emps;
        std::thread::scope(|s| {
            // One writer flips the shared terminal field; a second
            // writer bounces a disjoint field; readers continuously
            // assert the invariant.
            s.spawn(move || {
                for i in 0..50 {
                    db.update_txn(d, &[("name", Value::Str(format!("n{i}")))])
                        .unwrap();
                }
            });
            s.spawn(move || {
                for i in 0..50 {
                    db.update_txn(emps[0], &[("salary", Value::Int(i))])
                        .unwrap();
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    for _ in 0..200 {
                        for e in emps {
                            let (visible, truth) = db.snapshot_path_check(*e, p).unwrap();
                            assert_eq!(visible, truth, "torn replica observed");
                        }
                    }
                });
            }
        });
        // Final state is consistent too.
        for e in emps {
            let (visible, truth) = db.snapshot_path_check(*e, p).unwrap();
            assert_eq!(visible, truth);
        }
    }
}
