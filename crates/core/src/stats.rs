//! Live workload statistics and strategy advice.
//!
//! §3.1 leaves the replication decision to a DBA who "is knowledgeable
//! enough to realize that replication should only be specified on
//! reference paths that are frequently accessed and, at the same time,
//! infrequently updated". This module measures the quantities that
//! judgement needs — the sharing level `f`, object sizes `r`/`s`, and the
//! replicated-value size `k` — directly from the stored data, and feeds
//! them into the §6 cost model to produce a recommendation.

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::objects::read_object;
use fieldrep_costmodel::{recommend, IndexSetting, Params, Recommendation};
use fieldrep_model::{Object, Value};
use fieldrep_storage::HeapFile;
use std::collections::BTreeMap;

/// Measured statistics for one reference path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStats {
    /// Source-set cardinality (the model's `|R|`).
    pub source_count: u64,
    /// Distinct terminal objects actually referenced (the model's `|S|`;
    /// unreferenced members of the terminal set are irrelevant to the
    /// path's costs).
    pub terminal_count: u64,
    /// Sources whose chain reaches a terminal (complete chains).
    pub complete_chains: u64,
    /// Average sharing level `f` = complete chains / distinct terminals.
    pub sharing: f64,
    /// Average encoded size of a source object's *base* fields (the
    /// model's `r`, excluding replication annotations).
    pub source_bytes: f64,
    /// Average encoded size of a terminal object's base fields (`s`).
    pub terminal_bytes: f64,
    /// Average encoded size of the values the path would replicate (`k`).
    pub replicated_bytes: f64,
}

impl PathStats {
    /// Convert into cost-model parameters, supplying the workload knobs
    /// the data cannot reveal (selectivities).
    pub fn params(&self, read_sel: f64, update_sel: f64) -> Params {
        Params {
            s_count: (self.terminal_count.max(1)) as f64,
            sharing: self.sharing.max(1.0),
            read_sel,
            update_sel,
            r_bytes: self.source_bytes.max(1.0),
            s_bytes: self.terminal_bytes.max(1.0),
            repl_field_bytes: self.replicated_bytes.max(1.0),
            ..Params::default()
        }
    }
}

fn base_size(obj: &Object, def: &fieldrep_model::TypeDef) -> usize {
    // Encoded size of the object with annotations stripped.
    let bare = Object {
        type_id: obj.type_id,
        values: obj.values.clone(),
        annotations: Vec::new(),
    };
    bare.encoded_len(def)
}

impl Database {
    /// Measure [`PathStats`] for a dotted reference path (replicated or
    /// not): scans the source set once, walks every chain.
    pub fn analyze_path(&mut self, dotted: &str) -> Result<PathStats> {
        let resolved = self.catalog().resolve_path_str(dotted)?;
        if resolved.hops.is_empty() {
            return Err(DbError::Unsupported(format!(
                "{dotted:?} has no reference hops to analyse"
            )));
        }
        let set = self.catalog().set(resolved.set).clone();
        let hf = HeapFile::open(set.file);
        let mut sources = Vec::new();
        {
            let mut scan = hf.scan(self.sm())?;
            while let Some((oid, _, _)) = scan.next_record()? {
                sources.push(oid);
            }
        }

        let src_def = self.catalog().type_def(set.elem_type).clone();
        let term_type = *resolved.node_types.last().unwrap();
        let term_def = self.catalog().type_def(term_type).clone();

        let mut per_terminal: BTreeMap<fieldrep_storage::Oid, u64> = BTreeMap::new();
        let mut src_bytes = 0u64;
        let mut complete = 0u64;
        for &src in &sources {
            let obj = {
                let ctx = self.ctx();
                read_object(ctx.sm, ctx.cat, src)?
            };
            src_bytes += base_size(&obj, &src_def) as u64;
            // Walk the chain.
            let mut cur = Some(src);
            let mut cur_obj = Some(obj);
            for &hop in &resolved.hops {
                let o = match &cur_obj {
                    Some(o) => o,
                    None => break,
                };
                match &o.values[hop] {
                    Value::Ref(next) if !next.is_null() => {
                        cur = Some(*next);
                        let ctx = self.ctx();
                        cur_obj = Some(read_object(ctx.sm, ctx.cat, *next)?);
                    }
                    _ => {
                        cur = None;
                        cur_obj = None;
                    }
                }
            }
            if let Some(t) = cur {
                if cur_obj.is_some() {
                    *per_terminal.entry(t).or_default() += 1;
                    complete += 1;
                }
            }
        }

        // Terminal sizes and replicated-value sizes.
        let mut term_bytes = 0u64;
        let mut repl_bytes = 0u64;
        // Use a fake path-def shaped view for terminal_values: we only
        // need the terminal field list.
        for &t in per_terminal.keys() {
            let obj = {
                let ctx = self.ctx();
                read_object(ctx.sm, ctx.cat, t)?
            };
            term_bytes += base_size(&obj, &term_def) as u64;
            let vals: Vec<Value> = resolved
                .terminal_fields
                .iter()
                .map(|&i| obj.values[i].clone())
                .collect();
            repl_bytes += Value::encode_list(&vals).len() as u64;
        }
        let n_term = per_terminal.len() as u64;

        Ok(PathStats {
            source_count: sources.len() as u64,
            terminal_count: n_term,
            complete_chains: complete,
            sharing: if n_term == 0 {
                0.0
            } else {
                complete as f64 / n_term as f64
            },
            source_bytes: if sources.is_empty() {
                0.0
            } else {
                src_bytes as f64 / sources.len() as f64
            },
            terminal_bytes: if n_term == 0 {
                0.0
            } else {
                term_bytes as f64 / n_term as f64
            },
            replicated_bytes: if n_term == 0 {
                0.0
            } else {
                repl_bytes as f64 / n_term as f64
            },
        })
    }

    /// Measure the path, then ask the §6 model which strategy is cheapest
    /// at the given workload mix. `read_sel`/`update_sel` are the §6
    /// selectivities; `p_update` the update probability of the mix.
    pub fn advise_path(
        &mut self,
        dotted: &str,
        setting: IndexSetting,
        read_sel: f64,
        update_sel: f64,
        p_update: f64,
    ) -> Result<(PathStats, Recommendation)> {
        let stats = self.analyze_path(dotted)?;
        let params = stats.params(read_sel, update_sel);
        Ok((stats, recommend(&params, setting, p_update)))
    }
}
