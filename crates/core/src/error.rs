//! Engine-level errors.

use fieldrep_catalog::CatalogError;
use fieldrep_model::ModelError;
use fieldrep_storage::{Oid, StorageError};
use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors surfaced by the database engine.
#[derive(Debug)]
pub enum DbError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Data-model failure (encoding, typing, paths).
    Model(ModelError),
    /// Catalog/schema failure.
    Catalog(CatalogError),
    /// An object was deleted (or asked to be deleted) while other objects
    /// still reference it through a replication path. The paper assumes
    /// "D can be deleted only when it is not referenced by any object in
    /// Emp1" (§4.1.1); we enforce it.
    StillReferenced(Oid),
    /// A reference attribute points at an object of the wrong type.
    WrongRefType {
        /// The reference value.
        oid: Oid,
        /// Expected type name.
        expected: String,
        /// Actual type name.
        got: String,
    },
    /// Operation addressed to the wrong set or a foreign OID.
    NotInSet(Oid),
    /// A write-lock acquisition exceeded the deadlock watchdog bound.
    /// Sorted-order acquisition makes deadlock impossible, so this firing
    /// means either an ordering bug or a transaction stuck inside its
    /// critical section.
    LockTimeout(Oid),
    /// A transactional update was **applied but not made durable**: the
    /// in-memory apply succeeded (snapshot readers already see the new
    /// versions, and the dirty pages will still reach disk through the
    /// eviction autocommit path), but appending or fsyncing its WAL
    /// commit record failed. Distinct from a rejected update — callers
    /// that need the durability guarantee must treat the database as
    /// compromised (e.g. checkpoint or fail over); callers that only
    /// need the update applied may continue.
    CommitNotDurable(StorageError),
    /// Anything else that indicates a bug or unsupported usage.
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage: {e}"),
            DbError::Model(e) => write!(f, "model: {e}"),
            DbError::Catalog(e) => write!(f, "catalog: {e}"),
            DbError::StillReferenced(o) => {
                write!(f, "object {o} is still referenced along a replication path")
            }
            DbError::WrongRefType { oid, expected, got } => {
                write!(f, "reference {oid} should be a {expected}, found {got}")
            }
            DbError::NotInSet(o) => write!(f, "OID {o} does not belong to the addressed set"),
            DbError::LockTimeout(o) => {
                write!(f, "write-lock wait on {o} exceeded the deadlock watchdog")
            }
            DbError::CommitNotDurable(e) => {
                write!(
                    f,
                    "commit applied in memory but not durable (WAL logging failed): {e}"
                )
            }
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            DbError::Model(e) => Some(e),
            DbError::Catalog(e) => Some(e),
            DbError::CommitNotDurable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<ModelError> for DbError {
    fn from(e: ModelError) -> Self {
        DbError::Model(e)
    }
}

impl From<CatalogError> for DbError {
    fn from(e: CatalogError) -> Self {
        DbError::Catalog(e)
    }
}
