//! Update propagation (§4.1.3, §5.2).
//!
//! After an object's fields change, three kinds of replicated state may
//! need maintenance, all driven by the `(link-OID, link-ID)` pairs and
//! anchors stored *in the object itself* — exactly the paper's mechanism
//! for "determining how and when to propagate an update":
//!
//! 1. **In-place terminal propagation**: the object is the terminal of
//!    one or more in-place paths (its link IDs match the paths' last
//!    links) and a replicated field changed → traverse the inverted path
//!    to the source objects and rewrite their hidden values, in physical
//!    (sorted-OID) order.
//! 2. **Separate terminal refresh**: the object carries a replica anchor
//!    and a grouped field changed → rewrite the one shared replica object.
//! 3. **Intermediate reference update**: a *reference* attribute that is
//!    hop `i+1` of some path changed (the paper's `D.org` example) →
//!    unlink the old suffix, link the new one, and re-materialise the
//!    replicated values (or re-point the replica references) of every
//!    source object below.

use crate::attach::{
    attach_links_from, collect_sources, detach_links_from, for_each_page_group,
    set_source_replica_values, terminal_values,
};
use crate::error::{DbError, Result};
use crate::objects::{read_object, write_object};
use crate::replicas::{
    anchor_acquire, anchor_release, find_replica_ref, group_values, write_replica,
};
use crate::EngineCtx;
use crate::PendingEntry;
use fieldrep_catalog::{LinkId, PathId, Propagation, RepPathDef, Strategy};
use fieldrep_model::{Annotation, Object, Value};
use fieldrep_obs::{io as obs_io, metrics, names as obs_names, Span};
use fieldrep_storage::Oid;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Test-only failpoint: when armed, the next in-place terminal
/// propagation fails *after* its fan-out has been collected (so the
/// flight-recorder dump shows the failing batch's span and I/O delta).
/// Disarms itself on first use.
static FAIL_NEXT_INPLACE: AtomicBool = AtomicBool::new(false);

/// Arm [`FAIL_NEXT_INPLACE`]; used by the flight-recorder end-to-end
/// test to inject an engine error mid-ripple.
pub fn fail_next_inplace_propagation() {
    FAIL_NEXT_INPLACE.store(true, Ordering::SeqCst);
}

/// Process-wide propagation instruments (see the registry names below).
struct PropMetrics {
    /// `core.propagate.inplace`: in-place terminal propagations run.
    inplace: Arc<metrics::Counter>,
    /// `core.propagate.separate`: separate-replica refreshes run.
    separate: Arc<metrics::Counter>,
    /// `core.propagate.deferred`: propagations parked on the pending list.
    deferred: Arc<metrics::Counter>,
    /// `core.propagate.fanout`: source objects rewritten per in-place
    /// propagation (the paper's fan-out `f`), after page-level dedup.
    fanout: Arc<metrics::Histogram>,
    /// `core.propagate.pages_per_fanout`: distinct source pages touched
    /// per in-place propagation — the `Yao(f)` page count the cost model
    /// charges, as opposed to `f` round trips.
    pages_per_fanout: Arc<metrics::Histogram>,
}

fn prop_metrics() -> &'static PropMetrics {
    static METRICS: OnceLock<PropMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::registry();
        let fanout_bounds = &[1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        PropMetrics {
            inplace: r.counter(obs_names::CORE_PROPAGATE_INPLACE),
            separate: r.counter(obs_names::CORE_PROPAGATE_SEPARATE),
            deferred: r.counter(obs_names::CORE_PROPAGATE_DEFERRED),
            fanout: r.histogram(obs_names::CORE_PROPAGATE_FANOUT, fanout_bounds),
            pages_per_fanout: r
                .histogram(obs_names::CORE_PROPAGATE_PAGES_PER_FANOUT, fanout_bounds),
        }
    })
}

/// One observed field change: `(field index, old value, new value)`.
pub type FieldChange = (usize, Value, Value);

/// Run all propagation caused by `changed` fields of the object at `oid`.
/// `obj` must be the object's *post-update* state.
///
/// Opens a `core.propagate` span and accumulates its page-I/O delta under
/// the `"core.propagate"` component
/// ([`io::component_take`](fieldrep_obs::io::component_take)), so the
/// query layer can attribute propagation I/O separately from the carrying
/// update.
pub fn propagate_after_update(
    ctx: &mut EngineCtx<'_>,
    oid: Oid,
    obj: &Object,
    changed: &[FieldChange],
) -> Result<()> {
    let result = {
        let _span = Span::enter(obs_names::CORE_PROPAGATE);
        let io_before = obs_io::snapshot();
        let result = propagate_after_update_inner(ctx, oid, obj, changed);
        obs_io::component_add(obs_names::CORE_PROPAGATE, obs_io::snapshot() - io_before);
        result
    };
    // Engine errors mid-ripple dump the flight recorder: the span exits
    // above have already landed, so the dump's tail shows the failing
    // batch's propagation spans and their page-I/O deltas.
    if let Err(e) = &result {
        fieldrep_obs::recorder::record_error(obs_names::CORE_PROPAGATE, &e.to_string());
    }
    result
}

fn propagate_after_update_inner(
    ctx: &mut EngineCtx<'_>,
    oid: Oid,
    obj: &Object,
    changed: &[FieldChange],
) -> Result<()> {
    // ---- 2. Separate terminal refresh -------------------------------
    let anchors: Vec<(u16, Oid)> = obj
        .annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::ReplicaAnchor { group, oid, .. } => Some((*group, *oid)),
            _ => None,
        })
        .collect();
    for (gid, roid) in anchors {
        let group = ctx.cat.group(fieldrep_catalog::GroupId(gid)).clone();
        if changed.iter().any(|(f, _, _)| group.fields.contains(f)) {
            // A group defers only if every path reading through it does.
            let deferred = group
                .paths
                .iter()
                .all(|p| ctx.cat.path(*p).propagation == Propagation::Deferred);
            if deferred {
                prop_metrics().deferred.inc();
                for p in &group.paths {
                    ctx.pending.add(*p, PendingEntry::StaleReplica { obj: oid });
                }
            } else {
                let span = Span::enter(obs_names::CORE_PROPAGATE_SEPARATE);
                span.note("group", gid);
                prop_metrics().separate.inc();
                let io_before = obs_io::snapshot();
                let values = group_values(&group, obj);
                write_replica(ctx.sm, &group, roid, &values)?;
                // One shared replica rewritten; every path reading
                // through the group observed the ripple.
                let pages = (obs_io::snapshot() - io_before).page_touches();
                for p in &group.paths {
                    ctx.workload
                        .record_update(&ctx.cat.path(*p).expr.to_string(), 1, pages);
                }
            }
        }
    }

    // ---- 1 & 3. Link-borne propagation -------------------------------
    let link_ids: Vec<u8> = obj
        .annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::LinkRef { link, .. }
            | Annotation::InlineLink { link, .. }
            | Annotation::CollapsedVia { link } => Some(*link),
            _ => None,
        })
        .collect();

    let mut terminal_paths: Vec<PathId> = Vec::new();
    let mut intermediate: Vec<(PathId, usize, usize)> = Vec::new(); // (path, link level, field)
    for (f, _, _) in changed {
        for &l in &link_ids {
            let link = LinkId(l);
            for p in ctx.cat.inplace_paths_terminating_at(link, *f) {
                if !terminal_paths.contains(&p.id) {
                    terminal_paths.push(p.id);
                }
            }
            for p in ctx.cat.paths_with_intermediate(link, *f) {
                let lvl = p
                    .links
                    .iter()
                    .position(|x| *x == link)
                    .expect("paths_with_intermediate matched this link");
                if !intermediate.contains(&(p.id, lvl, *f)) {
                    intermediate.push((p.id, lvl, *f));
                }
            }
        }
    }

    for pid in terminal_paths {
        let path = ctx.cat.path(pid).clone();
        if path.propagation == Propagation::Deferred {
            prop_metrics().deferred.inc();
            ctx.pending.add(
                pid,
                PendingEntry::StaleSources {
                    obj: oid,
                    link_level: path.links.len() - 1,
                },
            );
        } else {
            propagate_terminal_inplace(ctx, &path, obj)?;
        }
    }

    for (pid, lvl, f) in intermediate {
        let path = ctx.cat.path(pid).clone();
        let (_, old, new) = changed
            .iter()
            .find(|(cf, _, _)| cf == &f)
            .expect("field listed in changes");
        let old_ref = match old {
            Value::Ref(o) if !o.is_null() => Some(*o),
            _ => None,
        };
        let new_ref = match new {
            Value::Ref(o) if !o.is_null() => Some(*o),
            _ => None,
        };
        handle_intermediate_ref_update(ctx, &path, lvl, oid, obj, old_ref, new_ref)?;
    }
    Ok(())
}

/// In-place propagation from a terminal object down to the source objects
/// ("the inverted path … is traversed to propagate that update", §4.1).
pub fn propagate_terminal_inplace(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    terminal_obj: &Object,
) -> Result<()> {
    debug_assert_eq!(path.strategy, Strategy::InPlace);
    let span = Span::enter(obs_names::CORE_PROPAGATE_INPLACE);
    let io_before = obs_io::snapshot();
    let last_level = path.links.len() - 1;
    let mut sources = collect_sources(ctx, path, last_level, terminal_obj)?;
    // Level-0 members arrive sorted but not deduplicated: dedup before
    // fetching so the fan-out metric counts logical sources and co-located
    // OIDs are not fetched repeatedly.
    sources.dedup();
    span.note("fanout", sources.len());
    if FAIL_NEXT_INPLACE.swap(false, Ordering::SeqCst) {
        return Err(DbError::Unsupported(
            "failpoint: injected propagation failure".into(),
        ));
    }
    prop_metrics().inplace.inc();
    prop_metrics().fanout.record(sources.len() as u64);
    let values = terminal_values(path, terminal_obj);
    // The sorted OID array visits each source page once, all co-located
    // sources rewritten under one pin (§4.1.3).
    let pages = for_each_page_group(ctx, &sources, |ctx, s| {
        set_source_replica_values(ctx, path, s, Some(values.clone()))
    })?;
    span.note("pages", pages);
    prop_metrics().pages_per_fanout.record(pages as u64);
    ctx.workload.record_update(
        &path.expr.to_string(),
        sources.len() as u64,
        (obs_io::snapshot() - io_before).page_touches(),
    );
    Ok(())
}

/// Build the suffix chain (as a full-length chain vector) starting at
/// `obj` (node `lvl + 1` of `path`) whose hop `lvl + 1` target is `next`.
/// Positions `0..=lvl` are `None` (unused by the link helpers for `from =
/// lvl + 1`).
pub(crate) fn suffix_chain(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    lvl: usize,
    obj_oid: Oid,
    next: Option<Oid>,
) -> Result<Vec<Option<Oid>>> {
    let n = path.hops.len() + 1;
    let mut chain = vec![None; n];
    chain[lvl + 1] = Some(obj_oid);
    if lvl + 2 >= n {
        // The changed ref was the terminal hop... cannot happen: node
        // lvl+1 with hop lvl+1 targets node lvl+2 ≤ n-1.
        return Ok(chain);
    }
    chain[lvl + 2] = next;
    let mut cur = next;
    for i in (lvl + 2)..path.hops.len() {
        let Some(cur_oid) = cur else { break };
        let cobj = read_object(ctx.sm, ctx.cat, cur_oid)?;
        cur = match &cobj.values[path.hops[i]] {
            Value::Ref(o) if !o.is_null() => Some(*o),
            _ => None,
        };
        chain[i + 1] = cur;
    }
    Ok(chain)
}

/// Handle a change of the reference attribute that is hop `lvl + 1` of
/// `path`, on the intermediate object at `oid` (post-update state `obj`).
pub fn handle_intermediate_ref_update(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    lvl: usize,
    oid: Oid,
    obj: &Object,
    old_ref: Option<Oid>,
    new_ref: Option<Oid>,
) -> Result<()> {
    if old_ref == new_ref {
        return Ok(());
    }
    let span = Span::enter(obs_names::CORE_PROPAGATE_INTERMEDIATE);
    span.note("level", lvl);
    if path.collapsed {
        return handle_collapsed_intermediate(ctx, path, oid, old_ref, new_ref);
    }
    // Sources below this object (they all reach the terminal through it),
    // sorted and deduplicated so the page-grouped rewrites below touch
    // each source page once.
    let mut sources = collect_sources(ctx, path, lvl, obj)?;
    sources.dedup();

    // Unlink the old suffix, link the new one. Structure is always
    // maintained eagerly, even for deferred paths.
    let old_chain = suffix_chain(ctx, path, lvl, oid, old_ref)?;
    detach_links_from(ctx, path, &old_chain, lvl + 1)?;
    let new_chain = suffix_chain(ctx, path, lvl, oid, new_ref)?;
    attach_links_from(ctx, path, &new_chain, lvl + 1)?;

    match path.strategy {
        Strategy::InPlace => {
            if path.propagation == Propagation::Deferred {
                ctx.pending.add(
                    path.id,
                    PendingEntry::StaleSources {
                        obj: oid,
                        link_level: lvl,
                    },
                );
                return Ok(());
            }
            // Re-materialise values from the new terminal (None if broken).
            let values = match new_chain.last().copied().flatten() {
                Some(t) => {
                    let tobj = read_object(ctx.sm, ctx.cat, t)?;
                    Some(terminal_values(path, &tobj))
                }
                None => None,
            };
            for_each_page_group(ctx, &sources, |ctx, s| {
                set_source_replica_values(ctx, path, s, values.clone())
            })?;
        }
        Strategy::Separate => {
            let group = ctx
                .cat
                .group(path.group.expect("separate path has a group"))
                .clone();
            let old_terminal = old_chain.last().copied().flatten();
            let new_terminal = new_chain.last().copied().flatten();

            // Remove the sources' replica references (counting how many
            // actually pointed at the old replica).
            let mut released = 0u32;
            for_each_page_group(ctx, &sources, |ctx, s| {
                let mut sobj = read_object(ctx.sm, ctx.cat, s)?;
                if let Some((i, _)) = find_replica_ref(&sobj, group.id.0) {
                    sobj.annotations.remove(i);
                    write_object(ctx.sm, ctx.cat, s, &sobj)?;
                    released += 1;
                }
                Ok(())
            })?;
            if released > 0 {
                if let Some(t) = old_terminal {
                    anchor_release(ctx.sm, ctx.cat, &group, t, released)?;
                }
            }
            // Point them at the new terminal's replica.
            if let Some(t) = new_terminal {
                let roid = anchor_acquire(ctx.sm, ctx.cat, &group, t, sources.len() as u32)?;
                for_each_page_group(ctx, &sources, |ctx, s| {
                    let mut sobj = read_object(ctx.sm, ctx.cat, s)?;
                    sobj.annotations.push(Annotation::ReplicaRef {
                        group: group.id.0,
                        oid: roid,
                    });
                    write_object(ctx.sm, ctx.cat, s, &sobj)
                })?;
            }
        }
    }
    Ok(())
}

/// §4.3.3: the intermediate's reference attribute changed. Move every
/// entry tagged with this intermediate from the old terminal's collapsed
/// store to the new one ("the OIDs of E1, E2, and E3 will have to be
/// moved from O's link object to X's link object"), then refresh the
/// moved sources' values. A broken new reference parks the entries on the
/// intermediate itself so the routing survives.
fn handle_collapsed_intermediate(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    via: Oid,
    old_ref: Option<Oid>,
    new_ref: Option<Oid>,
) -> Result<()> {
    let link = ctx.cat.link(path.links[0]).clone();

    // 1. Extract this intermediate's entries from their current holder
    //    (the old terminal, or parked on the intermediate).
    let old_holder = old_ref.unwrap_or(via);
    let mut moved: Vec<Oid> = Vec::new();
    {
        let hobj = read_object(ctx.sm, ctx.cat, old_holder)?;
        if let Some(head) = crate::collapsed::find_store(&hobj, link.id.0) {
            let (srcs, remaining) =
                crate::collapsed::store_remove_tagged(ctx.sm, &link, head, via)?;
            moved = srcs;
            if !moved.is_empty() && remaining == 0 {
                let mut hobj = read_object(ctx.sm, ctx.cat, old_holder)?;
                hobj.annotations.retain(
                    |a| !matches!(a, Annotation::LinkRef { link: l, .. } if *l == link.id.0),
                );
                write_object(ctx.sm, ctx.cat, old_holder, &hobj)?;
            }
        }
    }
    if moved.is_empty() {
        return Ok(());
    }

    // 2. Insert them at the new holder (new terminal, or parked).
    let new_holder = new_ref.unwrap_or(via);
    {
        let hobj = read_object(ctx.sm, ctx.cat, new_holder)?;
        match crate::collapsed::find_store(&hobj, link.id.0) {
            Some(head) => {
                for &s in &moved {
                    crate::collapsed::store_add(ctx.sm, &link, head, (s, via))?;
                }
            }
            None => {
                let entries: Vec<(Oid, Oid)> = moved.iter().map(|&s| (s, via)).collect();
                let head = crate::collapsed::create_store(ctx.sm, &link, &entries)?;
                let mut hobj = read_object(ctx.sm, ctx.cat, new_holder)?;
                hobj.annotations.push(Annotation::LinkRef {
                    link: link.id.0,
                    oid: head,
                });
                write_object(ctx.sm, ctx.cat, new_holder, &hobj)?;
            }
        }
    }

    // 3. Refresh the moved sources' values, in physical page order.
    moved.sort_unstable();
    moved.dedup();
    match new_ref {
        Some(t) => {
            if path.propagation == Propagation::Deferred {
                ctx.pending.add(
                    path.id,
                    PendingEntry::StaleSources {
                        obj: t,
                        link_level: 0,
                    },
                );
            } else {
                let tobj = read_object(ctx.sm, ctx.cat, t)?;
                let values = terminal_values(path, &tobj);
                for_each_page_group(ctx, &moved, |ctx, s| {
                    set_source_replica_values(ctx, path, s, Some(values.clone()))
                })?;
            }
        }
        None => {
            // Broken chain: values disappear (eagerly — a pending entry
            // cannot express clearing).
            for_each_page_group(ctx, &moved, |ctx, s| {
                set_source_replica_values(ctx, path, s, None)
            })?;
        }
    }
    Ok(())
}

/// Guard for deletes: true if other objects still reach this one through
/// a replication path (the paper assumes such objects are never deleted,
/// §4.1.1; we enforce it).
pub fn is_referenced(obj: &Object) -> bool {
    obj.annotations.iter().any(|a| match a {
        Annotation::LinkRef { .. } => true,
        Annotation::InlineLink { oids, .. } => !oids.is_empty(),
        Annotation::ReplicaAnchor { refcount, .. } => *refcount > 0,
        Annotation::CollapsedVia { .. } => true,
        _ => false,
    })
}
