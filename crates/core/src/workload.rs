//! Per-path observed workload statistics.
//!
//! The cost model (§6) is parameterised by an *assumed* workload: update
//! probability `P_up`, fan-out `f`, and per-operation page counts. This
//! module maintains the *observed* counterparts, keyed by replication
//! path expression: every replicated read and every propagation ripple
//! records itself here, so `EXPLAIN ANALYZE` and `show stats` can put
//! the live workload next to the model's assumptions.
//!
//! The registry is per-[`Database`](crate::Database) (no global state —
//! parallel tests never pollute each other) but mirrors aggregate totals
//! into the process-wide [`fieldrep_obs::metrics`] registry under the
//! `core.workload.*` names, so the timeline sampler and the flight
//! recorder see workload movement alongside the storage counters.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use fieldrep_obs::metrics::{registry, Counter, Gauge};
use fieldrep_obs::names as obs_names;
use parking_lot::RwLock;

/// Smoothing factor for the per-path EWMAs: each new sample contributes
/// 20%, history 80% — enough memory to ride out one odd ripple, fresh
/// enough to track a workload shift within a handful of operations.
pub const EWMA_ALPHA: f64 = 0.2;

/// Observed statistics for one replication path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathWorkload {
    /// Replicated-value reads served through this path.
    pub reads: u64,
    /// Update ripples propagated through this path.
    pub updates: u64,
    /// EWMA of the propagation fan-out (sources refreshed per ripple).
    pub fanout_ewma: f64,
    /// EWMA of pages touched per replicated read.
    pub read_pages_ewma: f64,
    /// EWMA of pages touched per update ripple.
    pub update_pages_ewma: f64,
}

impl PathWorkload {
    /// Total accesses (reads + updates) observed on this path.
    pub fn accesses(&self) -> u64 {
        self.reads + self.updates
    }

    /// Observed update probability: updates / (reads + updates).
    /// `0.0` before any access has been recorded.
    pub fn p_up(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.updates as f64 / total as f64
        }
    }
}

/// Fold `sample` into `ewma`, seeding on the first observation.
fn ewma_fold(ewma: f64, seeded: bool, sample: f64) -> f64 {
    if seeded {
        EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * ewma
    } else {
        sample
    }
}

/// Aggregate `core.workload.*` mirrors in the global metrics registry.
struct Mirror {
    reads: Arc<Counter>,
    updates: Arc<Counter>,
    paths: Arc<Gauge>,
    p_up_permille: Arc<Gauge>,
    fanout_x100: Arc<Gauge>,
    read_pages_x100: Arc<Gauge>,
    update_pages_x100: Arc<Gauge>,
}

fn mirror() -> &'static Mirror {
    static MIRROR: OnceLock<Mirror> = OnceLock::new();
    MIRROR.get_or_init(|| {
        let r = registry();
        Mirror {
            reads: r.counter(obs_names::CORE_WORKLOAD_READS),
            updates: r.counter(obs_names::CORE_WORKLOAD_UPDATES),
            paths: r.gauge(obs_names::CORE_WORKLOAD_PATHS),
            p_up_permille: r.gauge(obs_names::CORE_WORKLOAD_P_UP_PERMILLE),
            fanout_x100: r.gauge(obs_names::CORE_WORKLOAD_FANOUT_X100),
            read_pages_x100: r.gauge(obs_names::CORE_WORKLOAD_READ_PAGES_X100),
            update_pages_x100: r.gauge(obs_names::CORE_WORKLOAD_UPDATE_PAGES_X100),
        }
    })
}

/// Shards in the per-path registry. Paths hash to a shard; recording
/// sites only contend when two threads hit paths in the same shard.
const WORKLOAD_SHARDS: usize = 16;

/// Add `delta` to an `f64` stored as bits in an atomic (CAS loop).
fn atomic_f64_add(a: &AtomicU64, delta: f64) {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + delta).to_bits();
        match a.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_get(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

/// Live per-path workload registry; one per [`Database`](crate::Database).
///
/// The path map is split into [`WORKLOAD_SHARDS`] hash-selected shards,
/// each behind its own read-write lock, and the aggregate totals the
/// `core.workload.*` gauges mirror are maintained **incrementally** in
/// atomics: a recording site locks exactly one shard, folds its sample
/// into that path's EWMAs, and publishes the aggregate delta without
/// touching (or even reading) any other path. The previous design — one
/// pool-wide lock plus a full-map walk per sample to recompute the
/// gauges — serialized every recording site; under the multi-threaded
/// bench that made telemetry the bottleneck rather than the engine.
pub struct WorkloadStats {
    shards: [RwLock<HashMap<String, PathWorkload>>; WORKLOAD_SHARDS],
    /// Distinct paths across all shards.
    path_count: AtomicU64,
    /// Σ reads across paths.
    reads: AtomicU64,
    /// Σ updates across paths.
    updates: AtomicU64,
    /// f64 bits: Σ fanout_ewma · updates across paths.
    fanout_w: AtomicU64,
    /// f64 bits: Σ read_pages_ewma · reads across paths.
    read_pages_w: AtomicU64,
    /// f64 bits: Σ update_pages_ewma · updates across paths.
    update_pages_w: AtomicU64,
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            path_count: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            fanout_w: AtomicU64::new(f64::to_bits(0.0)),
            read_pages_w: AtomicU64::new(f64::to_bits(0.0)),
            update_pages_w: AtomicU64::new(f64::to_bits(0.0)),
        }
    }
}

impl WorkloadStats {
    /// Fresh, empty registry.
    pub fn new() -> WorkloadStats {
        WorkloadStats::default()
    }

    fn shard(&self, path: &str) -> &RwLock<HashMap<String, PathWorkload>> {
        let mut h = DefaultHasher::new();
        path.hash(&mut h);
        &self.shards[(h.finish() as usize) % WORKLOAD_SHARDS]
    }

    /// Record `n` replicated reads through `path` that touched `pages`
    /// pages in total (the per-read EWMA sample is `pages / n`).
    pub fn record_read(&self, path: &str, n: u64, pages: u64) {
        if n == 0 {
            return;
        }
        let per_read = pages as f64 / n as f64;
        let delta = {
            let mut map = self.shard(path).write();
            let is_new = !map.contains_key(path);
            let w = map.entry(path.to_string()).or_default();
            let old_w = w.read_pages_ewma * w.reads as f64;
            let seeded = w.reads > 0;
            w.read_pages_ewma = ewma_fold(w.read_pages_ewma, seeded, per_read);
            w.reads += n;
            if is_new {
                self.path_count.fetch_add(1, Ordering::Relaxed);
            }
            w.read_pages_ewma * w.reads as f64 - old_w
        };
        self.reads.fetch_add(n, Ordering::Relaxed);
        atomic_f64_add(&self.read_pages_w, delta);
        self.refresh_gauges();
        mirror().reads.add(n);
    }

    /// Record one update ripple through `path` that refreshed `fanout`
    /// sources and touched `pages` pages.
    pub fn record_update(&self, path: &str, fanout: u64, pages: u64) {
        let (fanout_delta, pages_delta) = {
            let mut map = self.shard(path).write();
            let is_new = !map.contains_key(path);
            let w = map.entry(path.to_string()).or_default();
            let old_fanout_w = w.fanout_ewma * w.updates as f64;
            let old_pages_w = w.update_pages_ewma * w.updates as f64;
            let seeded = w.updates > 0;
            w.fanout_ewma = ewma_fold(w.fanout_ewma, seeded, fanout as f64);
            w.update_pages_ewma = ewma_fold(w.update_pages_ewma, seeded, pages as f64);
            w.updates += 1;
            if is_new {
                self.path_count.fetch_add(1, Ordering::Relaxed);
            }
            (
                w.fanout_ewma * w.updates as f64 - old_fanout_w,
                w.update_pages_ewma * w.updates as f64 - old_pages_w,
            )
        };
        self.updates.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.fanout_w, fanout_delta);
        atomic_f64_add(&self.update_pages_w, pages_delta);
        self.refresh_gauges();
        mirror().updates.inc();
    }

    /// Observed workload for one path, if any access has been recorded.
    pub fn get(&self, path: &str) -> Option<PathWorkload> {
        self.shard(path).read().get(path).cloned()
    }

    /// All observed paths with their workloads, sorted by path expression.
    pub fn all(&self) -> Vec<(String, PathWorkload)> {
        let mut v: Vec<(String, PathWorkload)> = Vec::new();
        for shard in &self.shards {
            v.extend(shard.read().iter().map(|(k, w)| (k.clone(), w.clone())));
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Push aggregate values into the global `core.workload.*` gauges,
    /// from the incrementally maintained atomics — O(1), no shard locks.
    ///
    /// Ratios are fixed-point: `P_up` in permille, EWMAs ×100 — gauges
    /// are integers, and three significant digits is plenty for a
    /// dashboard line.
    fn refresh_gauges(&self) {
        let m = mirror();
        m.paths.set(self.path_count.load(Ordering::Relaxed) as i64);
        let reads = self.reads.load(Ordering::Relaxed);
        let updates = self.updates.load(Ordering::Relaxed);
        let total = reads + updates;
        if total > 0 {
            m.p_up_permille
                .set((1000.0 * updates as f64 / total as f64).round() as i64);
        }
        if updates > 0 {
            m.fanout_x100
                .set((100.0 * atomic_f64_get(&self.fanout_w) / updates as f64).round() as i64);
            m.update_pages_x100.set(
                (100.0 * atomic_f64_get(&self.update_pages_w) / updates as f64).round() as i64,
            );
        }
        if reads > 0 {
            m.read_pages_x100
                .set((100.0 * atomic_f64_get(&self.read_pages_w) / reads as f64).round() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_up_tracks_the_driven_mix() {
        let ws = WorkloadStats::new();
        for _ in 0..30 {
            ws.record_read("Emp.dept.name", 1, 2);
        }
        for _ in 0..10 {
            ws.record_update("Emp.dept.name", 4, 6);
        }
        let w = ws.get("Emp.dept.name").expect("path recorded");
        assert_eq!(w.reads, 30);
        assert_eq!(w.updates, 10);
        let p = w.p_up();
        assert!((p - 0.25).abs() < 1e-9, "p_up = {p}");
        assert_eq!(w.accesses(), 40);
    }

    #[test]
    fn ewmas_seed_on_first_sample_then_smooth() {
        let ws = WorkloadStats::new();
        ws.record_update("P", 10, 20);
        let w = ws.get("P").expect("recorded");
        assert_eq!(w.fanout_ewma, 10.0, "first sample seeds the EWMA");
        assert_eq!(w.update_pages_ewma, 20.0);
        ws.record_update("P", 20, 40);
        let w = ws.get("P").expect("recorded");
        assert!((w.fanout_ewma - 12.0).abs() < 1e-9, "0.2*20 + 0.8*10");
        assert!((w.update_pages_ewma - 24.0).abs() < 1e-9);
    }

    #[test]
    fn reads_average_pages_over_batch_size() {
        let ws = WorkloadStats::new();
        ws.record_read("P", 4, 8); // 2 pages per read
        let w = ws.get("P").expect("recorded");
        assert_eq!(w.reads, 4);
        assert_eq!(w.read_pages_ewma, 2.0);
        ws.record_read("P", 0, 99); // ignored
        assert_eq!(ws.get("P").expect("recorded").reads, 4);
    }

    /// The sharded registry must absorb concurrent recording on many
    /// paths without losing samples: exact counts per path, exact
    /// aggregate totals.
    #[test]
    fn concurrent_recording_loses_nothing() {
        let ws = std::sync::Arc::new(WorkloadStats::new());
        let paths: Vec<String> = (0..24).map(|i| format!("Set{i}.ref.field")).collect();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ws = std::sync::Arc::clone(&ws);
                let paths = paths.clone();
                std::thread::spawn(move || {
                    for round in 0..100 {
                        let p = &paths[(t * 5 + round) % paths.len()];
                        if round % 4 == 0 {
                            ws.record_update(p, 3, 5);
                        } else {
                            ws.record_read(p, 1, 2);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let all = ws.all();
        let reads: u64 = all.iter().map(|(_, w)| w.reads).sum();
        let updates: u64 = all.iter().map(|(_, w)| w.updates).sum();
        assert_eq!(updates, 8 * 25);
        assert_eq!(reads, 8 * 75);
        assert_eq!(all.len(), 24, "every path surfaced exactly once");
    }

    #[test]
    fn unknown_paths_and_sorting() {
        let ws = WorkloadStats::new();
        assert!(ws.get("nope").is_none());
        ws.record_read("B.x", 1, 1);
        ws.record_read("A.y", 1, 1);
        let all = ws.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "A.y");
        assert_eq!(all[1].0, "B.x");
    }
}
