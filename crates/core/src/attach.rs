//! Attaching and detaching objects to/from replication paths — the
//! maintenance operations of §4.1.1/§4.1.2 (in-place) and §5.2 (separate).
//!
//! * `insert E` → [`attach_path`] for every replication path of E's set:
//!   walk the forward chain, ensure link memberships at every maintained
//!   level, then materialise the replicated values (hidden fields for
//!   in-place; replica-object reference + refcount for separate).
//! * `delete E` → [`detach_path`]: remove E from the level-0 link object;
//!   if that link object empties, the intermediate object leaves the path
//!   and is removed from the next level's link object, and so on — the
//!   §4.1.2 ripple. Separate replication additionally releases the
//!   replica-object refcount.
//! * `update E.ref` → detach (with the old reference) then attach (with
//!   the new one), exactly the paper's "the actions under delete E are
//!   executed … and then the actions under insert E" (§4.1.1).

use crate::collapsed;
use crate::error::Result;
use crate::links::{link_add, link_members, link_remove};
use crate::objects::{read_object, value_key, write_object};
use crate::replicas::{anchor_acquire, anchor_release, find_replica_ref, read_replica};
use crate::EngineCtx;
use fieldrep_btree::BTreeIndex;
use fieldrep_catalog::{RepPathDef, Strategy};
use fieldrep_model::{Annotation, Object, Value};
use fieldrep_storage::Oid;

/// Process a physically-sorted OID batch page-group by page-group: split
/// it into chunks of at most half-the-pool distinct pages
/// ([`fieldrep_storage::oid_page_chunks`]), batch-fetch each chunk's
/// pages with grouped disk reads, and invoke `f` for every OID while its
/// page is pinned — so all co-located OIDs are rewritten under one pin,
/// the §4.1.3 payoff of keeping link-object OIDs sorted. Returns the
/// number of distinct pages the batch spanned.
pub(crate) fn for_each_page_group<F>(
    ctx: &mut EngineCtx<'_>,
    oids: &[Oid],
    mut f: F,
) -> Result<usize>
where
    F: FnMut(&mut EngineCtx<'_>, Oid) -> Result<()>,
{
    debug_assert!(oids.is_sorted(), "page grouping expects physical order");
    // Half the pool keeps enough free frames for the work `f` does under
    // the pins (forwarding, link pages, replica objects).
    let max_pages = (ctx.sm.pool().capacity() / 2).clamp(1, 32);
    let mut pages_total = 0;
    for (range, pages) in fieldrep_storage::oid_page_chunks(oids, max_pages) {
        pages_total += pages.len();
        let pinned = ctx.sm.get_pages_batch(&pages)?;
        for &oid in &oids[range] {
            f(ctx, oid)?;
        }
        drop(pinned);
    }
    Ok(pages_total)
}

/// Walk the forward chain of `path` starting from the already-loaded
/// source object. `chain[0] = Some(source)`; `chain[i+1]` is the object
/// after hop `i`, or `None` from the first NULL/broken reference onward.
pub fn walk_chain(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    source_obj: &Object,
) -> Result<Vec<Option<Oid>>> {
    let mut chain = Vec::with_capacity(path.hops.len() + 1);
    chain.push(Some(source));
    let mut cur_obj = None; // None = use source_obj
    for (i, &hop) in path.hops.iter().enumerate() {
        let obj_ref = match &cur_obj {
            None => source_obj,
            Some(o) => o,
        };
        let next = match &obj_ref.values[hop] {
            Value::Ref(o) if !o.is_null() => Some(*o),
            _ => None,
        };
        match next {
            Some(oid) => {
                chain.push(Some(oid));
                if i + 1 < path.hops.len() {
                    cur_obj = Some(read_object(ctx.sm, ctx.cat, oid)?);
                }
            }
            None => {
                // Broken from here on.
                while chain.len() < path.hops.len() + 1 {
                    chain.push(None);
                }
                break;
            }
        }
    }
    Ok(chain)
}

/// Set (or clear, with `None`) the hidden replicated values of `path` on a
/// source object, maintaining any index built on the path's replicated
/// values (§3.3.4).
pub fn set_source_replica_values(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    values: Option<Vec<Value>>,
) -> Result<()> {
    let mut obj = read_object(ctx.sm, ctx.cat, source)?;
    let old_first = obj
        .replica_values(path.id.0)
        .and_then(|v| v.first().cloned());
    let new_first = values.as_ref().and_then(|v| v.first().cloned());

    let unchanged = match (&values, obj.replica_values(path.id.0)) {
        (Some(v), Some(cur)) => v.as_slice() == cur,
        (None, None) => true,
        _ => false,
    };
    if unchanged {
        return Ok(());
    }

    match values {
        Some(v) => obj.set_replica_values(path.id.0, v),
        None => obj.clear_replica_value(path.id.0),
    }
    write_object(ctx.sm, ctx.cat, source, &obj)?;

    // Path-index maintenance.
    if let Some(idx) = ctx.cat.index_on_path(path.id) {
        let tree = BTreeIndex::open(idx.file);
        if let Some(old) = old_first {
            tree.delete(ctx.sm, &value_key(&old), source)?;
        }
        if let Some(new) = new_first {
            tree.insert(ctx.sm, &value_key(&new), source)?;
        }
    }
    Ok(())
}

/// Read the terminal values of `path` from a loaded terminal object.
pub fn terminal_values(path: &RepPathDef, terminal_obj: &Object) -> Vec<Value> {
    path.terminal_fields
        .iter()
        .map(|&i| terminal_obj.values[i].clone())
        .collect()
}

/// Attach `source` to `path`: ensure link memberships along the chain and
/// materialise the replicated values. Idempotent.
pub fn attach_path(ctx: &mut EngineCtx<'_>, path: &RepPathDef, source: Oid) -> Result<()> {
    let source_obj = read_object(ctx.sm, ctx.cat, source)?;
    let chain = walk_chain(ctx, path, source, &source_obj)?;
    if path.collapsed {
        return attach_collapsed(ctx, path, source, &chain);
    }
    attach_links_from(ctx, path, &chain, 0)?;
    attach_terminal(ctx, path, source, &chain)
}

/// Where a collapsed entry for a chain lives: the terminal object when
/// the chain is complete, otherwise *parked* on the intermediate (so the
/// routing survives a temporarily broken suffix).
fn collapsed_holder(chain: &[Option<Oid>]) -> Option<(Oid, Oid)> {
    let d = chain[1]?;
    Some((chain[2].unwrap_or(d), d))
}

/// §4.3.3 attach: add a tagged `(source, via)` entry to the holder's
/// collapsed store, mark the intermediate, materialise the value.
fn attach_collapsed(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    chain: &[Option<Oid>],
) -> Result<()> {
    let link = ctx.cat.link(path.links[0]).clone();
    if let Some((holder, via)) = collapsed_holder(chain) {
        let hobj = read_object(ctx.sm, ctx.cat, holder)?;
        match collapsed::find_store(&hobj, link.id.0) {
            Some(head) => {
                collapsed::store_add(ctx.sm, &link, head, (source, via))?;
            }
            None => {
                let head = collapsed::create_store(ctx.sm, &link, &[(source, via)])?;
                let mut hobj = read_object(ctx.sm, ctx.cat, holder)?;
                hobj.annotations.push(Annotation::LinkRef {
                    link: link.id.0,
                    oid: head,
                });
                write_object(ctx.sm, ctx.cat, holder, &hobj)?;
            }
        }
        // Mark the intermediate as being on a collapsed path.
        let mut dobj = read_object(ctx.sm, ctx.cat, via)?;
        if !collapsed::has_via_marker(&dobj, link.id.0) {
            dobj.annotations
                .push(Annotation::CollapsedVia { link: link.id.0 });
            write_object(ctx.sm, ctx.cat, via, &dobj)?;
        }
    }
    // Terminal values: only complete chains have them.
    let values = match chain[2] {
        Some(t) => {
            let tobj = read_object(ctx.sm, ctx.cat, t)?;
            Some(terminal_values(path, &tobj))
        }
        None => None,
    };
    set_source_replica_values(ctx, path, source, values)
}

/// Ensure link memberships for levels `from..` along `chain`.
pub fn attach_links_from(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    chain: &[Option<Oid>],
    from: usize,
) -> Result<()> {
    for (i, link_id) in path.links.iter().enumerate().skip(from) {
        let (member, target) = (chain[i], chain[i + 1]);
        let (Some(member), Some(target)) = (member, target) else {
            break;
        };
        let link = ctx.cat.link(*link_id).clone();
        link_add(
            ctx.sm,
            ctx.cat,
            &link,
            target,
            member,
            ctx.cfg.inline_link_threshold,
        )?;
    }
    Ok(())
}

/// Materialise the terminal of `path` for `source`, given its chain.
pub fn attach_terminal(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    chain: &[Option<Oid>],
) -> Result<()> {
    let terminal = *chain.last().expect("chain is non-empty");
    match path.strategy {
        Strategy::InPlace => {
            let values = match terminal {
                Some(t) => {
                    let tobj = read_object(ctx.sm, ctx.cat, t)?;
                    Some(terminal_values(path, &tobj))
                }
                None => None,
            };
            set_source_replica_values(ctx, path, source, values)
        }
        Strategy::Separate => {
            let group = ctx
                .cat
                .group(path.group.expect("separate path has a group"))
                .clone();
            let src_obj = read_object(ctx.sm, ctx.cat, source)?;
            let already = find_replica_ref(&src_obj, group.id.0).is_some();
            match (terminal, already) {
                (Some(t), false) => {
                    let roid = anchor_acquire(ctx.sm, ctx.cat, &group, t, 1)?;
                    let mut src_obj = read_object(ctx.sm, ctx.cat, source)?;
                    src_obj.annotations.push(Annotation::ReplicaRef {
                        group: group.id.0,
                        oid: roid,
                    });
                    write_object(ctx.sm, ctx.cat, source, &src_obj)?;
                    Ok(())
                }
                // Already attached (a sibling path of the same group did
                // it), or chain broken: nothing to do.
                _ => Ok(()),
            }
        }
    }
}

/// Detach `source` from `path`, using the references currently stored in
/// `source_obj` (call *before* changing a reference attribute).
pub fn detach_path(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    source_obj: &Object,
) -> Result<()> {
    let chain = walk_chain(ctx, path, source, source_obj)?;
    if path.collapsed {
        return detach_collapsed(ctx, path, source, &chain);
    }
    detach_links_from(ctx, path, &chain, 0)?;

    match path.strategy {
        Strategy::InPlace => set_source_replica_values(ctx, path, source, None),
        Strategy::Separate => {
            let group = ctx
                .cat
                .group(path.group.expect("separate path has a group"))
                .clone();
            let mut src_obj = read_object(ctx.sm, ctx.cat, source)?;
            if let Some((i, _roid)) = find_replica_ref(&src_obj, group.id.0) {
                src_obj.annotations.remove(i);
                write_object(ctx.sm, ctx.cat, source, &src_obj)?;
                if let Some(t) = chain.last().copied().flatten() {
                    anchor_release(ctx.sm, ctx.cat, &group, t, 1)?;
                }
            }
            Ok(())
        }
    }
}

/// Remove link memberships along `chain` starting at level `from`:
/// unconditional at `from`, rippling upward only while link objects empty
/// out (§4.1.2).
pub fn detach_links_from(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    chain: &[Option<Oid>],
    from: usize,
) -> Result<()> {
    let mut proceed = true;
    for (i, link_id) in path.links.iter().enumerate().skip(from) {
        if !proceed {
            break;
        }
        let (Some(member), Some(target)) = (chain[i], chain[i + 1]) else {
            break;
        };
        let link = ctx.cat.link(*link_id).clone();
        let out = link_remove(
            ctx.sm,
            ctx.cat,
            &link,
            target,
            member,
            ctx.cfg.inline_link_threshold,
        )?;
        // `member` leaves the path only when its own membership record is
        // gone *and* nothing else keeps it: ripple upward only if the
        // target's link store is now empty.
        proceed = out.now_empty;
    }
    Ok(())
}

/// §4.3.3 detach: drop the tagged entry, unmark the intermediate when it
/// routes nothing any more, clear the hidden value.
fn detach_collapsed(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source: Oid,
    chain: &[Option<Oid>],
) -> Result<()> {
    let link = ctx.cat.link(path.links[0]).clone();
    if let Some((holder, via)) = collapsed_holder(chain) {
        let hobj = read_object(ctx.sm, ctx.cat, holder)?;
        if let Some(head) = collapsed::find_store(&hobj, link.id.0) {
            let (removed_via, remaining, same_via) =
                collapsed::store_remove(ctx.sm, &link, head, source)?;
            if removed_via.is_some() && remaining == 0 {
                let mut hobj = read_object(ctx.sm, ctx.cat, holder)?;
                hobj.annotations.retain(
                    |a| !matches!(a, Annotation::LinkRef { link: l, .. } if *l == link.id.0),
                );
                write_object(ctx.sm, ctx.cat, holder, &hobj)?;
            }
            if removed_via == Some(via) && same_via == 0 {
                let mut dobj = read_object(ctx.sm, ctx.cat, via)?;
                dobj.annotations.retain(
                    |a| !matches!(a, Annotation::CollapsedVia { link: l } if *l == link.id.0),
                );
                write_object(ctx.sm, ctx.cat, via, &dobj)?;
            }
        }
    }
    set_source_replica_values(ctx, path, source, None)
}

/// Collect the source objects (level-0 members) that reach `obj` through
/// the inverted path of `path`. `at_level` is the level of the link whose
/// link object hangs off `obj` (`obj` is chain node `at_level + 1`).
/// Results are sorted by OID, i.e. physical order — the order the paper
/// propagates updates in.
pub fn collect_sources(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    at_level: usize,
    obj: &Object,
) -> Result<Vec<Oid>> {
    if path.collapsed {
        debug_assert_eq!(at_level, 0, "collapsed paths have one link level");
        let link = ctx.cat.link(path.links[0]).clone();
        return Ok(collapsed::members(ctx.sm, obj, &link)?
            .into_iter()
            .map(|(src, _)| src)
            .collect());
    }
    let link = ctx.cat.link(path.links[at_level]).clone();
    let members = link_members(ctx.sm, obj, &link)?;
    if at_level == 0 {
        return Ok(members); // already sorted
    }
    let mut out = Vec::new();
    for_each_page_group(ctx, &members, |ctx, m| {
        let mobj = read_object(ctx.sm, ctx.cat, m)?;
        out.extend(collect_sources(ctx, path, at_level - 1, &mobj)?);
        Ok(())
    })?;
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Read the current replicated values visible to `source_obj` for `path`
/// (in-place: the hidden field; separate: via the shared replica object).
/// `None` if the chain is broken / not materialised.
pub fn read_path_values(
    ctx: &mut EngineCtx<'_>,
    path: &RepPathDef,
    source_obj: &Object,
) -> Result<Option<Vec<Value>>> {
    match path.strategy {
        Strategy::InPlace => Ok(source_obj
            .replica_values(path.id.0)
            .map(<[fieldrep_model::Value]>::to_vec)),
        Strategy::Separate => {
            let group = ctx
                .cat
                .group(path.group.expect("separate path has a group"))
                .clone();
            match find_replica_ref(source_obj, group.id.0) {
                None => Ok(None),
                Some((_, roid)) => {
                    let all = read_replica(ctx.sm, &group, roid)?;
                    // Project the path's terminal fields out of the group's
                    // field list.
                    let vals = path
                        .terminal_fields
                        .iter()
                        .map(|f| {
                            let pos = group
                                .fields
                                .iter()
                                .position(|g| g == f)
                                .expect("path fields are a subset of group fields");
                            all[pos].clone()
                        })
                        .collect();
                    Ok(Some(vals))
                }
            }
        }
    }
}
