//! # fieldrep-core
//!
//! The paper's primary contribution: **field replication** for an
//! object-oriented DBMS, with both storage strategies —
//!
//! * **in-place replication** (§4): replicated values stored as hidden
//!   fields inside the referencing objects, kept consistent through
//!   *inverted paths* built from link objects and `(link-OID, link-ID)`
//!   pairs, with link sharing across paths with common prefixes (§4.1.4)
//!   and the small-link inlining optimization (§4.3.1);
//! * **separate replication** (§5): replicated values stored in shared
//!   replica objects in a tightly clustered side file `S'`, with
//!   refcounted anchors and `(n−1)`-level inverted paths.
//!
//! The crate exposes a [`Database`] facade implementing the data-model
//! operations of §2–§3 (`define type`, set creation, `replicate`,
//! `build btree on <path>`) and object DML with full, automatic update
//! propagation.

pub mod attach;
pub mod collapsed;
pub mod database;
pub mod error;
pub mod links;
pub mod objects;
pub mod propagate;
pub mod replicas;
pub mod stats;
pub mod txn;
pub mod workload;

pub use database::Database;
pub use error::{DbError, Result};
pub use objects::{read_object, value_key, write_object, LINK_TAG, REPLICA_TAG};
pub use stats::PathStats;
pub use txn::{LockSet, TxnManager, TxnStats};
pub use workload::{PathWorkload, WorkloadStats};

use fieldrep_catalog::{Catalog, PathId};
use fieldrep_storage::{Oid, StorageManager};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Buffer-pool size, in 4 KiB pages.
    pub pool_pages: usize,
    /// §4.3.1: level-0 link objects holding at most this many OIDs are
    /// eliminated and stored inline in the referenced object. `0`
    /// disables inlining (every membership gets a link object) — the
    /// setting used when validating the paper's cost model, which always
    /// charges for the link file.
    pub inline_link_threshold: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            pool_pages: 4096, // 16 MiB
            inline_link_threshold: 2,
        }
    }
}

/// Borrowed engine context threaded through the maintenance routines.
///
/// Every field is a shared reference: the storage manager and the
/// pending set have their own interior synchronization, so one context
/// can be built from `&Database` and used concurrently from many
/// threads.
pub struct EngineCtx<'a> {
    /// Storage manager.
    pub sm: &'a StorageManager,
    /// Catalog (immutable during DML).
    pub cat: &'a Catalog,
    /// Configuration.
    pub cfg: &'a DbConfig,
    /// Deferred-propagation work queue (§8 / `Propagation::Deferred`).
    pub pending: &'a PendingSet,
    /// Observed per-path workload statistics (reads, ripples, EWMAs).
    pub workload: &'a WorkloadStats,
}

/// One deferred-propagation work item.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PendingEntry {
    /// The in-place sources reachable from `obj` through the path's link
    /// at `link_level` must re-materialise their replicated values.
    StaleSources {
        /// The object whose update made them stale (terminal or
        /// intermediate).
        obj: Oid,
        /// Which link level of the path to collect sources through.
        link_level: usize,
    },
    /// The shared replica object anchored at this terminal must be
    /// re-materialised (separate replication).
    StaleReplica {
        /// The terminal object.
        obj: Oid,
    },
}

/// The set of deferred propagations, per replication path. Entries are
/// deduplicated, which is the point: repeated updates to the same object
/// collapse into one eventual propagation.
///
/// Internally synchronized (`&self` everywhere): deferred-mode writers
/// on different threads enqueue concurrently, and `sync` drains under
/// the same lock.
#[derive(Default)]
pub struct PendingSet {
    map: Mutex<HashMap<u16, BTreeSet<PendingEntry>>>,
}

impl PendingSet {
    /// Record a deferred propagation for `path`.
    pub fn add(&self, path: PathId, entry: PendingEntry) {
        self.map.lock().entry(path.0).or_default().insert(entry);
    }

    /// Take (and clear) the pending entries of `path`.
    pub fn take(&self, path: PathId) -> Vec<PendingEntry> {
        self.map
            .lock()
            .remove(&path.0)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }

    /// Pending-entry count for `path`.
    pub fn count(&self, path: PathId) -> usize {
        self.map.lock().get(&path.0).map_or(0, BTreeSet::len)
    }

    /// Paths that currently have pending work.
    pub fn dirty_paths(&self) -> Vec<PathId> {
        self.map.lock().keys().map(|k| PathId(*k)).collect()
    }

    /// Drop every entry referring to `oid` (called when the object is
    /// deleted).
    pub fn purge_object(&self, oid: Oid) {
        let mut map = self.map.lock();
        for set in map.values_mut() {
            set.retain(|e| match e {
                PendingEntry::StaleSources { obj, .. } | PendingEntry::StaleReplica { obj } => {
                    *obj != oid
                }
            });
        }
        map.retain(|_, s| !s.is_empty());
    }

    /// Drop every entry of `path` (called when the path is dropped).
    pub fn purge_path(&self, path: PathId) {
        self.map.lock().remove(&path.0);
    }

    /// Total pending entries across all paths.
    pub fn total(&self) -> usize {
        self.map.lock().values().map(BTreeSet::len).sum()
    }
}
