//! Typed object access over heap files, plus index-key encoding.

use crate::error::{DbError, Result};
use fieldrep_btree::keys;
use fieldrep_catalog::Catalog;
use fieldrep_model::{Object, TypeId, Value};
use fieldrep_storage::{HeapFile, Oid, StorageManager};

/// Record type tag used for link objects (never a real `TypeId`).
pub const LINK_TAG: u16 = 0xFFFF;
/// Record type tag used for separate-replication replica objects.
pub const REPLICA_TAG: u16 = 0xFFFE;

/// Read and decode the object at `oid`.
pub fn read_object(sm: &StorageManager, cat: &Catalog, oid: Oid) -> Result<Object> {
    let hf = HeapFile::open(oid.file);
    let (tag, payload) = hf.read(sm, oid)?;
    debug_assert!(tag != LINK_TAG && tag != REPLICA_TAG, "not a data object");
    let type_id = TypeId(tag);
    let def = cat.type_def(type_id);
    Ok(Object::decode(type_id, def, &payload)?)
}

/// Encode and write back the object at `oid` (same type tag).
pub fn write_object(sm: &StorageManager, cat: &Catalog, oid: Oid, obj: &Object) -> Result<()> {
    let def = cat.type_def(obj.type_id);
    let payload = obj.encode(def);
    let hf = HeapFile::open(oid.file);
    hf.rec_update(sm, oid, &payload)?;
    Ok(())
}

/// Encode an indexable value as an order-preserving key.
///
/// `Unit` (padding) and `NULL` refs sort first; refs sort by physical OID.
pub fn value_key(v: &Value) -> Vec<u8> {
    match v {
        Value::Int(x) => keys::encode_i64(*x).to_vec(),
        Value::Float(x) => keys::encode_f64(*x).to_vec(),
        Value::Str(s) => keys::encode_bytes(s.as_bytes()),
        Value::Ref(o) => o.to_bytes().to_vec(),
        Value::Unit => Vec::new(),
    }
}

/// Check that a `Value::Ref` points at an object of the expected type (or
/// is NULL). Reads the referenced object's record header via a full read —
/// callers that already walk the chain skip this.
pub fn check_ref_type(
    sm: &StorageManager,
    cat: &Catalog,
    v: &Value,
    expected: TypeId,
) -> Result<()> {
    let oid = v.as_ref_oid().map_err(DbError::from)?;
    if oid.is_null() {
        return Ok(());
    }
    let hf = HeapFile::open(oid.file);
    let (tag, _) = hf.read(sm, oid)?;
    if tag != expected.0 {
        return Err(DbError::WrongRefType {
            oid,
            expected: cat.type_def(expected).name.clone(),
            got: if tag == LINK_TAG || tag == REPLICA_TAG {
                "internal object".into()
            } else {
                cat.type_def(TypeId(tag)).name.clone()
            },
        });
    }
    Ok(())
}
