//! The public database facade.
//!
//! `Database` ties together the storage manager, the catalog and the
//! replication engine, and exposes the operations the paper's data model
//! implies: `define type`, `create <set>`, `replicate <path>`,
//! `build btree on <path>`, plus object-level DML with full replication
//! maintenance.

use crate::attach::{attach_path, detach_path, read_path_values, walk_chain};
use crate::error::{DbError, Result};
use crate::objects::{read_object, value_key, write_object, REPLICA_TAG};
use crate::propagate::{is_referenced, propagate_after_update, FieldChange};
use crate::replicas::{find_anchor, group_values, write_replica};
use crate::{links, DbConfig, EngineCtx};
use fieldrep_btree::BTreeIndex;
use fieldrep_catalog::{
    Catalog, GroupId, IndexId, IndexKind, IndexTarget, LinkId, PathId, Propagation, RepPathDef,
    SetId, Strategy,
};
use fieldrep_model::{Annotation, FieldType, Object, PathExpr, TypeDef, TypeId, Value};
use fieldrep_storage::{DiskManager, FileId, HeapFile, IoProfile, Oid, StorageManager};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An object-oriented database with field replication (Shekita & Carey,
/// SIGMOD 1989).
///
/// ```
/// use fieldrep_core::{Database, DbConfig};
/// use fieldrep_catalog::Strategy;
/// use fieldrep_model::{FieldType, TypeDef, Value};
///
/// let mut db = Database::in_memory(DbConfig::default());
/// db.define_type(TypeDef::new("DEPT", vec![
///     ("name", FieldType::Str),
///     ("budget", FieldType::Int),
/// ])).unwrap();
/// db.define_type(TypeDef::new("EMP", vec![
///     ("name", FieldType::Str),
///     ("salary", FieldType::Int),
///     ("dept", FieldType::Ref("DEPT".into())),
/// ])).unwrap();
/// db.create_set("Dept", "DEPT").unwrap();
/// db.create_set("Emp1", "EMP").unwrap();
///
/// let d = db.insert("Dept", vec![Value::Str("Shoe".into()), Value::Int(100)]).unwrap();
/// let e = db.insert("Emp1", vec![
///     Value::Str("Alice".into()), Value::Int(120_000), Value::Ref(d),
/// ]).unwrap();
///
/// // replicate Emp1.dept.name — reads of that path no longer join.
/// let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
/// assert_eq!(db.path_values(e, p).unwrap(), Some(vec![Value::Str("Shoe".into())]));
///
/// // Updates propagate automatically.
/// db.update(d, &[("name", Value::Str("Shoes & Boots".into()))]).unwrap();
/// assert_eq!(db.path_values(e, p).unwrap(),
///            Some(vec![Value::Str("Shoes & Boots".into())]));
/// ```
pub struct Database {
    sm: StorageManager,
    catalog: Catalog,
    cfg: DbConfig,
    file_sets: HashMap<FileId, SetId>,
    pending: crate::PendingSet,
    workload: crate::WorkloadStats,
    /// The dedicated file holding the serialized catalog (always the
    /// disk's first file).
    catalog_file: FileId,
    /// Concurrency: OID write-lock table, commit epoch, txn counters.
    txn: crate::txn::TxnManager,
}

impl Database {
    /// Create a database over an in-memory disk.
    pub fn in_memory(cfg: DbConfig) -> Database {
        Self::with_disk(Box::new(fieldrep_storage::MemDisk::new()), cfg)
    }

    /// Create a new database over an arbitrary disk backend. The first
    /// file on the disk is reserved for the serialized catalog (see
    /// [`Database::save`] / [`Database::open`]).
    pub fn with_disk(disk: Box<dyn DiskManager>, cfg: DbConfig) -> Database {
        let sm = StorageManager::new(disk, cfg.pool_pages);
        let catalog_file = sm.create_file().expect("allocate catalog file");
        Database {
            sm,
            catalog: Catalog::new(),
            cfg,
            file_sets: HashMap::new(),
            pending: crate::PendingSet::default(),
            workload: crate::WorkloadStats::new(),
            catalog_file,
            txn: crate::txn::TxnManager::default(),
        }
    }

    /// As [`Database::with_disk`] for a **fresh** database, with a
    /// write-ahead log attached: crash recovery runs against the pair
    /// first (a no-op on an empty log), then the pool is built with the
    /// WAL so every [`Database::update_txn`] commit is durable and
    /// every page write-back obeys the steal rule (see
    /// [`fieldrep_storage::wal`]).
    pub fn with_disk_and_wal(
        disk: Box<dyn DiskManager>,
        store: Box<dyn fieldrep_storage::WalStore>,
        cfg: DbConfig,
    ) -> Result<Database> {
        let sm = StorageManager::new_with_wal(disk, store, cfg.pool_pages)?;
        let catalog_file = sm.create_file()?;
        Ok(Database {
            sm,
            catalog: Catalog::new(),
            cfg,
            file_sets: HashMap::new(),
            pending: crate::PendingSet::default(),
            workload: crate::WorkloadStats::new(),
            catalog_file,
            txn: crate::txn::TxnManager::default(),
        })
    }

    /// Persist the catalog (schema, sets, indexes, replication paths,
    /// links, groups) into the database's catalog file and flush every
    /// dirty page, so the disk image is self-contained and can be
    /// reopened with [`Database::open`]. Deferred propagation is synced
    /// first (the pending queue lives only in memory). With a WAL
    /// attached this is a full checkpoint: data files are fsynced and
    /// the log is truncated.
    pub fn save(&mut self) -> Result<()> {
        self.sync_all_pending()?;
        let image = fieldrep_catalog::persist::encode(&self.catalog);
        let hf = HeapFile::open(self.catalog_file);
        // Clear the previous image.
        let mut old = Vec::new();
        {
            let mut scan = hf.scan(&self.sm)?;
            while let Some((oid, _, _)) = scan.next_record()? {
                old.push(oid);
            }
        }
        for oid in old {
            hf.rec_delete(&self.sm, oid)?;
        }
        // Write the new image as sequence-numbered chunks.
        let max = fieldrep_storage::MAX_RECORD_PAYLOAD - 8;
        for (seq, chunk) in image.chunks(max).enumerate() {
            let mut payload = Vec::with_capacity(8 + chunk.len());
            payload.extend_from_slice(&(seq as u32).to_le_bytes());
            payload.extend_from_slice(&(image.chunks(max).count() as u32).to_le_bytes());
            payload.extend_from_slice(chunk);
            hf.rec_insert(&self.sm, 0xFFFC, &payload)?;
        }
        Ok(self.sm.checkpoint()?)
    }

    /// Reopen a database previously built with [`Database::with_disk`]
    /// and persisted with [`Database::save`].
    pub fn open(disk: Box<dyn DiskManager>, cfg: DbConfig) -> Result<Database> {
        let sm = StorageManager::new(disk, cfg.pool_pages);
        Self::open_with_sm(sm, cfg)
    }

    /// Reopen a database with a write-ahead log: crash recovery runs
    /// first (replaying any committed transactions the log still
    /// holds), then the catalog is read from the recovered disk image.
    /// This is the constructor a kill-and-restart cycle uses; see
    /// [`StorageManager::recovery_report`] for what recovery found.
    pub fn open_with_wal(
        disk: Box<dyn DiskManager>,
        store: Box<dyn fieldrep_storage::WalStore>,
        cfg: DbConfig,
    ) -> Result<Database> {
        let sm = StorageManager::new_with_wal(disk, store, cfg.pool_pages)?;
        Self::open_with_sm(sm, cfg)
    }

    fn open_with_sm(sm: StorageManager, cfg: DbConfig) -> Result<Database> {
        let catalog_file = FileId(0);
        let hf = HeapFile::open(catalog_file);
        let mut chunks: Vec<(u32, Vec<u8>)> = Vec::new();
        {
            let mut scan = hf.scan(&sm)?;
            while let Some((_, tag, payload)) = scan.next_record()? {
                if tag != 0xFFFC || payload.len() < 8 {
                    return Err(DbError::Unsupported(
                        "corrupt catalog image (bad chunk)".into(),
                    ));
                }
                let seq = u32::from_le_bytes(payload[0..4].try_into().unwrap());
                chunks.push((seq, payload[8..].to_vec()));
            }
        }
        if chunks.is_empty() {
            return Err(DbError::Unsupported(
                "no catalog image on this disk (was the database saved?)".into(),
            ));
        }
        chunks.sort_by_key(|(seq, _)| *seq);
        let mut image = Vec::new();
        for (_, c) in chunks {
            image.extend_from_slice(&c);
        }
        let catalog = fieldrep_catalog::persist::decode(&image)?;
        let file_sets = catalog.sets().iter().map(|s| (s.file, s.id)).collect();
        Ok(Database {
            sm,
            catalog,
            cfg,
            file_sets,
            pending: crate::PendingSet::default(),
            workload: crate::WorkloadStats::new(),
            catalog_file,
            txn: crate::txn::TxnManager::default(),
        })
    }

    /// The transaction manager (OID write locks, snapshot versions,
    /// txn counters — see [`crate::txn`]).
    pub fn txn(&self) -> &crate::txn::TxnManager {
        &self.txn
    }

    /// The catalog (schema, sets, paths, links, groups, indexes).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The storage manager (for I/O statistics and low-level access from
    /// the query processor).
    pub fn sm(&self) -> &StorageManager {
        &self.sm
    }

    /// Engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Borrow the pieces the engine functions need. Takes `&self`: the
    /// context is all shared references (see [`EngineCtx`]), so DML can
    /// run from many threads over one database.
    pub fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            sm: &self.sm,
            cat: &self.catalog,
            cfg: &self.cfg,
            pending: &self.pending,
            workload: &self.workload,
        }
    }

    /// Observed per-path workload statistics (reads, update ripples,
    /// fan-out and page-I/O EWMAs). See [`crate::WorkloadStats`].
    pub fn workload(&self) -> &crate::WorkloadStats {
        &self.workload
    }

    /// One line per observed path: the workload snapshot the slow-query
    /// log stores next to an over-threshold statement's profile.
    pub fn workload_snapshot_text(&self) -> String {
        self.workload
            .all()
            .iter()
            .map(|(path, w)| {
                format!(
                    "{path}: reads={} updates={} p_up={:.3} fanout={:.2} read_pages={:.2} update_pages={:.2}",
                    w.reads,
                    w.updates,
                    w.p_up(),
                    w.fanout_ewma,
                    w.read_pages_ewma,
                    w.update_pages_ewma
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Statement-boundary hook: offer a finished statement (text, plan
    /// rendering, per-operator profile, row count) to the process-wide
    /// [slow-query log](fieldrep_obs::slowlog), attaching this
    /// database's workload snapshot. Returns whether it was recorded.
    /// Free (two relaxed loads) while the log is unarmed.
    pub fn observe_statement(
        &self,
        statement: &str,
        plan: &str,
        profile: &fieldrep_obs::Profile,
        rows: u64,
    ) -> bool {
        // Build the workload snapshot only when a threshold actually
        // tripped; `slowlog::observe` re-checks, so probe first.
        let (wall, pages) = fieldrep_obs::slowlog::thresholds();
        if wall.is_none() && pages.is_none() {
            return false;
        }
        fieldrep_obs::slowlog::observe(
            statement,
            plan,
            profile,
            rows,
            &self.workload_snapshot_text(),
        )
    }

    /// Arm the process-wide slow-query log; see
    /// [`fieldrep_obs::slowlog::set_thresholds`].
    pub fn set_slowlog_thresholds(&self, wall_ms: Option<u64>, io_pages: Option<u64>) {
        fieldrep_obs::slowlog::set_thresholds(wall_ms, io_pages);
    }

    /// Disarm the slow-query log (the initial state).
    pub fn set_slowlog_off(&self) {
        fieldrep_obs::slowlog::set_off();
    }

    /// I/O counters since the last reset.
    pub fn io_profile(&self) -> IoProfile {
        self.sm.io_profile()
    }

    /// Reset the whole I/O profile (disk and pool counters together); see
    /// [`fieldrep_storage::BufferPool::reset_profile`]. This is the reset
    /// the benchmark harness uses for cold-pool accounting.
    pub fn reset_profile(&self) {
        self.sm.reset_profile();
    }

    /// Reset I/O counters. Alias of [`Database::reset_profile`], kept for
    /// existing call sites.
    pub fn reset_io(&self) {
        self.reset_profile();
    }

    /// Flush all dirty pages and leave the buffer pool cold (used between
    /// measured queries).
    pub fn flush_all(&self) -> Result<()> {
        Ok(self.sm.flush_all()?)
    }

    // ------------------------------------------------------------------ DDL

    /// `define type …`.
    pub fn define_type(&mut self, def: TypeDef) -> Result<TypeId> {
        Ok(self.catalog.define_type(def)?)
    }

    /// `create <Name> : {own ref <TYPE>}` — a named set stored as its own
    /// disk file.
    pub fn create_set(&mut self, name: &str, type_name: &str) -> Result<SetId> {
        let file = self.sm.create_file()?;
        let id = self.catalog.create_set(name, type_name, file)?;
        self.file_sets.insert(file, id);
        Ok(id)
    }

    /// The set an object belongs to (by its OID's file).
    pub fn set_of(&self, oid: Oid) -> Result<SetId> {
        self.file_sets
            .get(&oid.file)
            .copied()
            .ok_or(DbError::NotInSet(oid))
    }

    /// `replicate <path>` with the chosen strategy. If the set already has
    /// members, the inverted path, hidden fields and replica objects are
    /// built now — the "one-time cost to build it" the paper mentions
    /// (§4.1.2). Returns the new path id.
    pub fn replicate(&mut self, path: &str, strategy: Strategy) -> Result<PathId> {
        self.replicate_with(path, strategy, Propagation::Eager)
    }

    /// As [`Database::replicate`], choosing eager or deferred value
    /// propagation (§8: "updates are not propagated until needed").
    /// Deferred paths batch their refresh work; queries that read the
    /// path sync it first (or call [`Database::sync_path`] explicitly).
    pub fn replicate_with(
        &mut self,
        path: &str,
        strategy: Strategy,
        propagation: Propagation,
    ) -> Result<PathId> {
        self.replicate_full(path, strategy, propagation, false)
    }

    /// §4.3.3: replicate a 2-level path with a *collapsed* inverted path —
    /// one tagged link from the terminal objects directly to the sources.
    /// Terminal updates then propagate through a single link level;
    /// intermediate re-targets move tagged entries between stores.
    pub fn replicate_collapsed(&mut self, path: &str, propagation: Propagation) -> Result<PathId> {
        self.replicate_full(path, Strategy::InPlace, propagation, true)
    }

    fn replicate_full(
        &mut self,
        path: &str,
        strategy: Strategy,
        propagation: Propagation,
        collapsed: bool,
    ) -> Result<PathId> {
        let expr = PathExpr::parse(path)?;
        // Snapshot which links exist already (they are complete and can be
        // skipped by the builder).
        let pre_links: BTreeSet<u8> = self.catalog.links().map(|l| l.id.0).collect();
        let decl = self.catalog.declare_replication_full(
            &expr,
            strategy,
            propagation,
            collapsed,
            &self.sm,
        )?;
        let path_def = self.catalog.path(decl.path).clone();
        self.build_path(&path_def, &pre_links)?;
        if decl.group_extended {
            self.resync_group(decl.group.expect("extended ⇒ group"))?;
        }
        Ok(decl.path)
    }

    /// Bulk-build the physical structures for a freshly declared path.
    fn build_path(&mut self, path: &RepPathDef, pre_links: &BTreeSet<u8>) -> Result<()> {
        if path.collapsed {
            return self.build_collapsed_path(path, pre_links);
        }
        // Pass 1: scan the source set, walk every chain.
        let set = self.catalog.set(path.set).clone();
        let hf = HeapFile::open(set.file);
        let mut sources = Vec::new();
        {
            let mut scan = hf.scan(&self.sm)?;
            while let Some((oid, _tag, _payload)) = scan.next_record()? {
                sources.push(oid);
            }
        }
        // memberships[level]: target -> sorted members.
        let mut memberships: Vec<BTreeMap<Oid, BTreeSet<Oid>>> =
            vec![BTreeMap::new(); path.links.len()];
        let mut chains: Vec<(Oid, Vec<Option<Oid>>)> = Vec::with_capacity(sources.len());
        for &src in &sources {
            let obj = {
                let ctx = self.ctx();
                read_object(ctx.sm, ctx.cat, src)?
            };
            let chain = {
                let mut ctx = self.ctx();
                walk_chain(&mut ctx, path, src, &obj)?
            };
            for lvl in 0..path.links.len() {
                if let (Some(member), Some(target)) = (chain[lvl], chain[lvl + 1]) {
                    memberships[lvl].entry(target).or_default().insert(member);
                }
            }
            chains.push((src, chain));
        }

        // Pass 2: build link structures for links created by this path, in
        // target physical order (the paper stores link objects "in the
        // same physical order as the objects … which reference them").
        for (lvl, link_id) in path.links.iter().enumerate() {
            if pre_links.contains(&link_id.0) {
                continue; // shared with an earlier path ⇒ already complete
            }
            let link = self.catalog.link(*link_id).clone();
            for (target, members) in &memberships[lvl] {
                let members: Vec<Oid> = members.iter().copied().collect();
                let ctx = self.ctx();
                let mut tobj = read_object(ctx.sm, ctx.cat, *target)?;
                if self.cfg.inline_link_threshold > 0
                    && link.level == 0
                    && members.len() <= self.cfg.inline_link_threshold
                {
                    tobj.annotations.push(Annotation::InlineLink {
                        link: link.id.0,
                        oids: members,
                    });
                } else {
                    let head = links::create_link_store(&self.sm, &link, &members)?;
                    let ctx2 = self.ctx();
                    tobj = read_object(ctx2.sm, ctx2.cat, *target)?;
                    tobj.annotations.push(Annotation::LinkRef {
                        link: link.id.0,
                        oid: head,
                    });
                }
                let ctx3 = self.ctx();
                write_object(ctx3.sm, ctx3.cat, *target, &tobj)?;
            }
        }

        // Pass 3: terminal materialisation.
        match path.strategy {
            Strategy::InPlace => {
                for (src, chain) in &chains {
                    let values = match chain.last().copied().flatten() {
                        Some(t) => {
                            let ctx = self.ctx();
                            let tobj = read_object(ctx.sm, ctx.cat, t)?;
                            Some(crate::attach::terminal_values(path, &tobj))
                        }
                        None => None,
                    };
                    let mut ctx = self.ctx();
                    crate::attach::set_source_replica_values(&mut ctx, path, *src, values)?;
                }
            }
            Strategy::Separate => {
                let group = self
                    .catalog
                    .group(path.group.expect("separate path has a group"))
                    .clone();
                // Was this group freshly created by this path? If it has
                // other paths, replicas already exist.
                if group.paths.len() > 1 {
                    return Ok(());
                }
                // Terminal -> sources, in terminal physical order so that
                // S' is laid out in the same order as S (§5, Figure 7).
                let mut by_terminal: BTreeMap<Oid, Vec<Oid>> = BTreeMap::new();
                for (src, chain) in &chains {
                    if let Some(t) = chain.last().copied().flatten() {
                        by_terminal.entry(t).or_default().push(*src);
                    }
                }
                let rf = HeapFile::open(group.file);
                for (t, srcs) in &by_terminal {
                    let (roid, values) = {
                        let ctx = self.ctx();
                        let tobj = read_object(ctx.sm, ctx.cat, *t)?;
                        (find_anchor(&tobj, group.id.0), group_values(&group, &tobj))
                    };
                    debug_assert!(roid.is_none(), "fresh group has no anchors yet");
                    let roid =
                        rf.rec_insert(&self.sm, REPLICA_TAG, &Value::encode_list(&values))?;
                    {
                        let ctx = self.ctx();
                        let mut tobj = read_object(ctx.sm, ctx.cat, *t)?;
                        tobj.annotations.push(Annotation::ReplicaAnchor {
                            group: group.id.0,
                            oid: roid,
                            refcount: srcs.len() as u32,
                        });
                        write_object(ctx.sm, ctx.cat, *t, &tobj)?;
                    }
                    for s in srcs {
                        let ctx = self.ctx();
                        let mut sobj = read_object(ctx.sm, ctx.cat, *s)?;
                        sobj.annotations.push(Annotation::ReplicaRef {
                            group: group.id.0,
                            oid: roid,
                        });
                        write_object(ctx.sm, ctx.cat, *s, &sobj)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Bulk-build a §4.3.3 collapsed path: one tagged store per terminal
    /// (or per parked intermediate), `CollapsedVia` markers, then values.
    fn build_collapsed_path(&mut self, path: &RepPathDef, pre_links: &BTreeSet<u8>) -> Result<()> {
        let set = self.catalog.set(path.set).clone();
        let hf = HeapFile::open(set.file);
        let mut sources = Vec::new();
        {
            let mut scan = hf.scan(&self.sm)?;
            while let Some((oid, _, _)) = scan.next_record()? {
                sources.push(oid);
            }
        }
        let link = self.catalog.link(path.links[0]).clone();
        let link_is_new = !pre_links.contains(&link.id.0);

        let mut chains: Vec<(Oid, Vec<Option<Oid>>)> = Vec::with_capacity(sources.len());
        let mut holders: BTreeMap<Oid, Vec<(Oid, Oid)>> = BTreeMap::new();
        let mut vias: BTreeSet<Oid> = BTreeSet::new();
        for &src in &sources {
            let obj = {
                let ctx = self.ctx();
                read_object(ctx.sm, ctx.cat, src)?
            };
            let chain = {
                let mut ctx = self.ctx();
                walk_chain(&mut ctx, path, src, &obj)?
            };
            if let Some(d) = chain[1] {
                let holder = chain[2].unwrap_or(d);
                holders.entry(holder).or_default().push((src, d));
                vias.insert(d);
            }
            chains.push((src, chain));
        }

        if link_is_new {
            for (holder, mut entries) in holders {
                entries.sort_unstable_by_key(|e| e.0);
                let head = crate::collapsed::create_store(&self.sm, &link, &entries)?;
                let ctx = self.ctx();
                let mut hobj = read_object(ctx.sm, ctx.cat, holder)?;
                hobj.annotations.push(Annotation::LinkRef {
                    link: link.id.0,
                    oid: head,
                });
                write_object(ctx.sm, ctx.cat, holder, &hobj)?;
            }
            for via in vias {
                let ctx = self.ctx();
                let mut dobj = read_object(ctx.sm, ctx.cat, via)?;
                if !crate::collapsed::has_via_marker(&dobj, link.id.0) {
                    dobj.annotations
                        .push(Annotation::CollapsedVia { link: link.id.0 });
                    write_object(ctx.sm, ctx.cat, via, &dobj)?;
                }
            }
        }

        // Values.
        for (src, chain) in &chains {
            let values = match chain[2] {
                Some(t) => {
                    let ctx = self.ctx();
                    let tobj = read_object(ctx.sm, ctx.cat, t)?;
                    Some(crate::attach::terminal_values(path, &tobj))
                }
                None => None,
            };
            let mut ctx = self.ctx();
            crate::attach::set_source_replica_values(&mut ctx, path, *src, values)?;
        }
        Ok(())
    }

    /// Rewrite every replica object of `group` from its terminal object —
    /// needed when a new path extends the group's field list.
    fn resync_group(&mut self, group_id: GroupId) -> Result<()> {
        let group = self.catalog.group(group_id).clone();
        let term_type = group.terminal_type;
        let term_sets: Vec<FileId> = self
            .catalog
            .sets_of_type(term_type)
            .map(|s| s.file)
            .collect();
        for file in term_sets {
            let hf = HeapFile::open(file);
            let mut oids = Vec::new();
            {
                let mut scan = hf.scan(&self.sm)?;
                while let Some((oid, _, _)) = scan.next_record()? {
                    oids.push(oid);
                }
            }
            for oid in oids {
                let ctx = self.ctx();
                let obj = read_object(ctx.sm, ctx.cat, oid)?;
                if let Some((_, roid, _)) = find_anchor(&obj, group.id.0) {
                    let values = group_values(&group, &obj);
                    write_replica(self.ctx().sm, &group, roid, &values)?;
                }
            }
        }
        Ok(())
    }

    /// `build btree on <path>` (§3.3.4). A plain `Set.field` path builds a
    /// base-field index; a path with reference hops must name an existing
    /// **in-place** replication path, and the index is built over the
    /// replicated values stored in the source objects.
    pub fn create_index(&mut self, path: &str, kind: IndexKind) -> Result<IndexId> {
        let resolved = self.catalog.resolve_path_str(path)?;
        if resolved.hops.is_empty() {
            let field = resolved.terminal_fields[0];
            let set = self.catalog.set(resolved.set).clone();
            // Build sorted (key, oid) pairs from a scan.
            let mut entries = Vec::new();
            let hf = HeapFile::open(set.file);
            let mut oids = Vec::new();
            {
                let mut scan = hf.scan(&self.sm)?;
                while let Some((oid, _, _)) = scan.next_record()? {
                    oids.push(oid);
                }
            }
            for oid in oids {
                let ctx = self.ctx();
                let obj = read_object(ctx.sm, ctx.cat, oid)?;
                entries.push((value_key(&obj.values[field]), oid));
            }
            entries.sort();
            let tree = BTreeIndex::bulk_load(&self.sm, &entries, 1.0)?;
            Ok(self.catalog.declare_index(
                resolved.set,
                IndexTarget::Field(field),
                kind,
                tree.file,
            )?)
        } else {
            // Index on replicated values.
            let field = resolved.terminal_fields[0];
            let rep = self
                .catalog
                .replica_for(resolved.set, &resolved.hops, field)
                .ok_or_else(|| {
                    DbError::Unsupported(format!(
                        "index on {path:?} requires the path to be replicated first"
                    ))
                })?;
            if rep.strategy != Strategy::InPlace {
                return Err(DbError::Unsupported(
                    "path indexes are built over in-place replicated values; \
                     replicate the path with Strategy::InPlace"
                        .into(),
                ));
            }
            if rep.propagation != Propagation::Eager {
                return Err(DbError::Unsupported(
                    "path indexes require eager propagation (a deferred path's \
                     index would go stale between syncs)"
                        .into(),
                ));
            }
            let rep_id = rep.id;
            let pos = rep
                .terminal_fields
                .iter()
                .position(|f| *f == field)
                .expect("replica_for checked membership");
            let set = self.catalog.set(resolved.set).clone();
            let hf = HeapFile::open(set.file);
            let mut oids = Vec::new();
            {
                let mut scan = hf.scan(&self.sm)?;
                while let Some((oid, _, _)) = scan.next_record()? {
                    oids.push(oid);
                }
            }
            let mut entries = Vec::new();
            for oid in oids {
                let ctx = self.ctx();
                let obj = read_object(ctx.sm, ctx.cat, oid)?;
                if let Some(vals) = obj.replica_values(rep_id.0) {
                    entries.push((value_key(&vals[pos]), oid));
                }
            }
            entries.sort();
            let tree = BTreeIndex::bulk_load(&self.sm, &entries, 1.0)?;
            Ok(self.catalog.declare_index(
                resolved.set,
                IndexTarget::ReplicatedPath(rep_id),
                kind,
                tree.file,
            )?)
        }
    }

    // ------------------------------------------------------------------ DML

    /// Insert an object into a set. Reference values are type-checked;
    /// every replication path of the set is attached (§4.1.1 `insert E`).
    pub fn insert(&self, set_name: &str, values: Vec<Value>) -> Result<Oid> {
        // Durability: the whole multi-page operation (heap insert, index
        // maintenance, replication attach) runs inside the WAL apply
        // section, so a concurrent `update_txn` commit can never sweep a
        // half-applied insert into its commit record, and eviction can
        // never autocommit one of its pages mid-way (no-steal).
        let _apply = self.sm.wal().map(|w| w.apply_lock());
        let set = self.catalog.set(self.catalog.set_id(set_name)?).clone();
        let def = self.catalog.type_def(set.elem_type).clone();
        let obj = Object::new(set.elem_type, &def, values)?;
        // Check ref target types.
        for (v, f) in obj.values.iter().zip(&def.fields) {
            if let FieldType::Ref(tname) = &f.ftype {
                let expected = self.catalog.type_id(tname)?;
                let ctx = self.ctx();
                crate::objects::check_ref_type(ctx.sm, ctx.cat, v, expected)?;
            }
        }
        let hf = HeapFile::open(set.file);
        let payload = obj.encode(&def);
        let oid = hf.rec_insert(&self.sm, set.elem_type.0, &payload)?;

        // Base-field index maintenance.
        let idxs: Vec<(usize, FileId)> = self
            .catalog
            .indexes_on(set.id)
            .filter_map(|i| match i.target {
                IndexTarget::Field(f) => Some((f, i.file)),
                _ => None,
            })
            .collect();
        for (f, file) in idxs {
            BTreeIndex::open(file).insert(&self.sm, &value_key(&obj.values[f]), oid)?;
        }

        // Replication attach.
        let paths: Vec<RepPathDef> = self.catalog.paths_from(set.id).cloned().collect();
        for p in &paths {
            let mut ctx = self.ctx();
            attach_path(&mut ctx, p, oid)?;
        }
        Ok(oid)
    }

    /// Read the object at `oid` (base values + annotations).
    pub fn get(&self, oid: Oid) -> Result<Object> {
        let ctx = self.ctx();
        read_object(ctx.sm, ctx.cat, oid)
    }

    /// Read one base field by name.
    pub fn get_field(&self, oid: Oid, field: &str) -> Result<Value> {
        let obj = self.get(oid)?;
        let def = self.catalog.type_def(obj.type_id);
        Ok(obj.get(def, field)?.clone())
    }

    /// The replicated values of `path` as seen from the source object at
    /// `oid` (`None` if the path chain is broken).
    pub fn path_values(&self, oid: Oid, path: PathId) -> Result<Option<Vec<Value>>> {
        self.sync_path(path)?;
        let path = self.catalog.path(path).clone();
        let before = fieldrep_obs::io::snapshot();
        let obj = self.get(oid)?;
        let values = {
            let mut ctx = self.ctx();
            read_path_values(&mut ctx, &path, &obj)?
        };
        let pages = (fieldrep_obs::io::snapshot() - before).page_touches();
        self.workload.record_read(&path.expr.to_string(), 1, pages);
        Ok(values)
    }

    /// Dereference a path with plain functional joins (the no-replication
    /// baseline): reads one object per hop.
    pub fn deref_path(&self, oid: Oid, dotted: &str) -> Result<Option<Vec<Value>>> {
        let obj = self.get(oid)?;
        let set = self.set_of(oid)?;
        let set_name = self.catalog.set(set).name.clone();
        let resolved = self
            .catalog
            .resolve_path_str(&format!("{set_name}.{dotted}"))?;
        let mut cur = obj;
        for &hop in &resolved.hops {
            let next = match &cur.values[hop] {
                Value::Ref(o) if !o.is_null() => *o,
                _ => return Ok(None),
            };
            cur = self.get(next)?;
        }
        Ok(Some(
            resolved
                .terminal_fields
                .iter()
                .map(|&f| cur.values[f].clone())
                .collect(),
        ))
    }

    /// Update named fields of the object at `oid`, propagating to all
    /// replicated copies (§4.1.3, §5.2) and maintaining indexes.
    pub fn update(&self, oid: Oid, changes: &[(&str, Value)]) -> Result<()> {
        // Durability: see `insert`. `Txn::update_txn` takes the apply
        // section itself (it must extend through commit logging) and
        // calls `apply_update` directly.
        let _apply = self.sm.wal().map(|w| w.apply_lock());
        self.apply_update(oid, changes)
    }

    /// [`Database::update`] minus the WAL apply-section guard. Callers
    /// must already hold the apply section (the guard is non-reentrant).
    // lint: allow(L7) both callers (update, Txn::update_txn) hold the apply section
    pub(crate) fn apply_update(&self, oid: Oid, changes: &[(&str, Value)]) -> Result<()> {
        let set = self.set_of(oid)?;
        let set_def = self.catalog.set(set).clone();
        let def = self.catalog.type_def(set_def.elem_type).clone();

        let old_obj = self.get(oid)?;
        // Resolve and type-check changes.
        let mut field_changes: Vec<FieldChange> = Vec::new();
        for (name, new) in changes {
            let idx = def.field_index(name).ok_or_else(|| {
                DbError::Model(fieldrep_model::ModelError::NoSuchField((*name).into()))
            })?;
            if !new.matches(&def.fields[idx].ftype) {
                return Err(DbError::Model(fieldrep_model::ModelError::TypeMismatch {
                    expected: format!("{:?}", def.fields[idx].ftype),
                    got: new.kind_name().into(),
                }));
            }
            if let FieldType::Ref(tname) = &def.fields[idx].ftype {
                let expected = self.catalog.type_id(tname)?;
                let ctx = self.ctx();
                crate::objects::check_ref_type(ctx.sm, ctx.cat, new, expected)?;
            }
            let old = old_obj.values[idx].clone();
            if old != *new {
                field_changes.push((idx, old, new.clone()));
            }
        }
        if field_changes.is_empty() {
            return Ok(());
        }

        // Phase A: detach this object's own paths whose first hop changes.
        let changed_refs: BTreeSet<usize> = field_changes
            .iter()
            .filter(|(i, _, _)| def.fields[*i].ftype.is_ref())
            .map(|(i, _, _)| *i)
            .collect();
        let own_paths: Vec<RepPathDef> = self
            .catalog
            .paths_from(set)
            .filter(|p| changed_refs.contains(&p.hops[0]))
            .cloned()
            .collect();
        for p in &own_paths {
            let mut ctx = self.ctx();
            detach_path(&mut ctx, p, oid, &old_obj)?;
        }

        // Phase B: apply the changes and write back. Re-read the object:
        // Phase A may have modified its annotations.
        let mut obj = self.get(oid)?;
        for (i, _, new) in &field_changes {
            obj.values[*i] = new.clone();
        }
        {
            let ctx = self.ctx();
            write_object(ctx.sm, ctx.cat, oid, &obj)?;
        }

        // Base-field index maintenance.
        let idxs: Vec<(usize, FileId)> = self
            .catalog
            .indexes_on(set)
            .filter_map(|i| match i.target {
                IndexTarget::Field(f) => Some((f, i.file)),
                _ => None,
            })
            .collect();
        for (f, file) in idxs {
            if let Some((_, old, new)) = field_changes.iter().find(|(i, _, _)| *i == f) {
                let tree = BTreeIndex::open(file);
                tree.delete(&self.sm, &value_key(old), oid)?;
                tree.insert(&self.sm, &value_key(new), oid)?;
            }
        }

        // Phase C: re-attach own paths with the new references.
        for p in &own_paths {
            let mut ctx = self.ctx();
            attach_path(&mut ctx, p, oid)?;
        }

        // Phase D: propagate to objects that replicate *from* this object.
        let obj = self.get(oid)?; // fresh annotations
        let mut ctx = self.ctx();
        propagate_after_update(&mut ctx, oid, &obj, &field_changes)?;
        Ok(())
    }

    /// Delete the object at `oid` (§4.1.1 `delete E`). Fails with
    /// [`DbError::StillReferenced`] if other objects still replicate
    /// through it.
    pub fn delete(&self, oid: Oid) -> Result<()> {
        // Durability: see `insert`.
        let _apply = self.sm.wal().map(|w| w.apply_lock());
        let set = self.set_of(oid)?;
        let obj = self.get(oid)?;
        if is_referenced(&obj) {
            return Err(DbError::StillReferenced(oid));
        }
        // Detach every replication path of the set.
        let paths: Vec<RepPathDef> = self.catalog.paths_from(set).cloned().collect();
        for p in &paths {
            let mut ctx = self.ctx();
            detach_path(&mut ctx, p, oid, &obj)?;
        }
        // Base-field index removal.
        let idxs: Vec<(usize, FileId)> = self
            .catalog
            .indexes_on(set)
            .filter_map(|i| match i.target {
                IndexTarget::Field(f) => Some((f, i.file)),
                _ => None,
            })
            .collect();
        for (f, file) in idxs {
            BTreeIndex::open(file).delete(&self.sm, &value_key(&obj.values[f]), oid)?;
        }
        let hf = HeapFile::open(oid.file);
        hf.rec_delete(&self.sm, oid)?;
        self.pending.purge_object(oid);
        Ok(())
    }

    /// Apply every deferred propagation recorded for `path` (a no-op for
    /// eager paths or when nothing is pending). Returns the number of
    /// work items applied.
    pub fn sync_path(&self, path: PathId) -> Result<usize> {
        // Durability: see `insert`.
        let _apply = self.sm.wal().map(|w| w.apply_lock());
        self.sync_path_inner(path)
    }

    /// [`Database::sync_path`] minus the WAL apply-section guard;
    /// `sync_all_pending` holds the guard once across all paths.
    fn sync_path_inner(&self, path: PathId) -> Result<usize> {
        let entries = self.pending.take(path);
        if entries.is_empty() {
            return Ok(0);
        }
        let pdef = self.catalog.path(path).clone();
        let n = entries.len();
        for e in entries {
            let io_before = fieldrep_obs::io::snapshot();
            let fanout = match e {
                crate::PendingEntry::StaleSources { obj, link_level } => {
                    let mut ctx = self.ctx();
                    let sources = {
                        let o = read_object(ctx.sm, ctx.cat, obj)?;
                        let mut s =
                            crate::attach::collect_sources(&mut ctx, &pdef, link_level, &o)?;
                        s.dedup();
                        s
                    };
                    // Refresh the stale sources page-group by page-group
                    // (sorted physical order, one grouped read per run).
                    crate::attach::for_each_page_group(&mut ctx, &sources, |ctx, s| {
                        let sobj = read_object(ctx.sm, ctx.cat, s)?;
                        let chain = walk_chain(ctx, &pdef, s, &sobj)?;
                        crate::attach::attach_terminal(ctx, &pdef, s, &chain)
                    })?;
                    sources.len() as u64
                }
                crate::PendingEntry::StaleReplica { obj } => {
                    let group = self
                        .catalog
                        .group(pdef.group.expect("separate path has a group"))
                        .clone();
                    let ctx = self.ctx();
                    let o = read_object(ctx.sm, ctx.cat, obj)?;
                    if let Some((_, roid, _)) = find_anchor(&o, group.id.0) {
                        let values = group_values(&group, &o);
                        write_replica(ctx.sm, &group, roid, &values)?;
                    }
                    1
                }
            };
            // A synced entry is an update ripple that was parked; count
            // it against the path now that its pages are known.
            let pages = (fieldrep_obs::io::snapshot() - io_before).page_touches();
            self.workload
                .record_update(&pdef.expr.to_string(), fanout, pages);
        }
        Ok(n)
    }

    /// Sync every path with pending deferred work.
    pub fn sync_all_pending(&self) -> Result<usize> {
        // Durability: see `insert`.
        let _apply = self.sm.wal().map(|w| w.apply_lock());
        let mut total = 0;
        for p in self.pending.dirty_paths() {
            total += self.sync_path_inner(p)?;
        }
        Ok(total)
    }

    /// Number of deferred work items queued for `path`.
    pub fn pending_count(&self, path: PathId) -> usize {
        self.pending.count(path)
    }

    /// Drop a replication path: replicated values are removed from the
    /// source objects, links whose refcount reaches zero are dismantled
    /// (their 1-byte IDs become reusable, §4.2), and the replica group is
    /// torn down when this was its last path. Fails if an index is built
    /// over the path's replicated values (drop the index first).
    pub fn drop_replication(&mut self, path: PathId) -> Result<()> {
        self.pending.purge_path(path);
        let removed = self.catalog.remove_path(path)?;
        let pdef = &removed.path;
        let set = self.catalog.set(pdef.set).clone();

        // Strip source-side state: hidden values / replica refs.
        let sources = {
            let hf = HeapFile::open(set.file);
            let mut oids = Vec::new();
            let mut scan = hf.scan(&self.sm)?;
            while let Some((oid, _, _)) = scan.next_record()? {
                oids.push(oid);
            }
            oids
        };
        let dropped_group = removed.dropped_group.clone();
        for src in &sources {
            let ctx = self.ctx();
            let mut obj = read_object(ctx.sm, ctx.cat, *src)?;
            let before = obj.annotations.len();
            match pdef.strategy {
                Strategy::InPlace => obj.clear_replica_value(pdef.id.0),
                Strategy::Separate => {
                    if let Some(g) = &dropped_group {
                        obj.annotations.retain(|a| {
                            !matches!(a, Annotation::ReplicaRef { group, .. } if *group == g.id.0)
                        });
                    }
                    // Group still shared by other paths: refs stay.
                }
            }
            if obj.annotations.len() != before || matches!(pdef.strategy, Strategy::InPlace) {
                write_object(ctx.sm, ctx.cat, *src, &obj)?;
            }
        }

        // Dismantle freed links: remove annotations from every object of
        // the link's target type (for collapsed links also the
        // intermediates, which may carry markers or parked stores), then
        // drop the link file.
        for link in &removed.freed_links {
            let mut ann_types = vec![link.dst_type];
            if link.collapsed {
                // node_types = [source, intermediate, terminal]
                ann_types.push(removed.path.node_types[1]);
            }
            let dst_sets: Vec<FileId> = ann_types
                .iter()
                .flat_map(|t| self.catalog.sets_of_type(*t).map(|s| s.file))
                .collect();
            for file in dst_sets {
                let hf = HeapFile::open(file);
                let mut oids = Vec::new();
                {
                    let mut scan = hf.scan(&self.sm)?;
                    while let Some((oid, _, _)) = scan.next_record()? {
                        oids.push(oid);
                    }
                }
                for oid in oids {
                    let ctx = self.ctx();
                    let mut obj = read_object(ctx.sm, ctx.cat, oid)?;
                    let before = obj.annotations.len();
                    obj.annotations.retain(|a| {
                        !matches!(a,
                            Annotation::LinkRef { link: l, .. }
                            | Annotation::InlineLink { link: l, .. }
                            | Annotation::CollapsedVia { link: l }
                                if *l == link.id.0)
                    });
                    if obj.annotations.len() != before {
                        write_object(ctx.sm, ctx.cat, oid, &obj)?;
                    }
                }
            }
            self.sm.drop_file(link.file)?;
        }

        // Tear down a dropped group: anchors off the terminals, then the
        // S' file (replica objects go with it).
        if let Some(g) = dropped_group {
            let term_sets: Vec<FileId> = self
                .catalog
                .sets_of_type(g.terminal_type)
                .map(|s| s.file)
                .collect();
            for file in term_sets {
                let hf = HeapFile::open(file);
                let mut oids = Vec::new();
                {
                    let mut scan = hf.scan(&self.sm)?;
                    while let Some((oid, _, _)) = scan.next_record()? {
                        oids.push(oid);
                    }
                }
                for oid in oids {
                    let ctx = self.ctx();
                    let mut obj = read_object(ctx.sm, ctx.cat, oid)?;
                    let before = obj.annotations.len();
                    obj.annotations.retain(|a| {
                        !matches!(a, Annotation::ReplicaAnchor { group, .. } if *group == g.id.0)
                    });
                    if obj.annotations.len() != before {
                        write_object(ctx.sm, ctx.cat, oid, &obj)?;
                    }
                }
            }
            self.sm.drop_file(g.file)?;
        }
        Ok(())
    }

    /// Inverse function over an inverted path (§8: "ways in which
    /// inverted paths can be used … in implementing inverse functions"):
    /// the objects of `link`'s source side that reference `target` along
    /// the link — read straight from the link store, without scanning.
    pub fn inverse(&self, link: LinkId, target: Oid) -> Result<Vec<Oid>> {
        let ldef = self.catalog.link(link).clone();
        let ctx = self.ctx();
        let obj = read_object(ctx.sm, ctx.cat, target)?;
        if ldef.collapsed {
            return Ok(crate::collapsed::members(ctx.sm, &obj, &ldef)?
                .into_iter()
                .map(|(src, _)| src)
                .collect());
        }
        crate::links::link_members(ctx.sm, &obj, &ldef)
    }

    /// Convenience: inverse of a 1-hop reference path given as
    /// `"Set.reffield"` (e.g. `"Emp1.dept"`): which members of `Set`
    /// reference `target` through `reffield`? Requires a replication path
    /// (either strategy) whose inverted path covers that link.
    pub fn inverse_of(&self, dotted: &str, target: Oid) -> Result<Vec<Oid>> {
        let resolved = self.catalog.resolve_path_str(dotted)?;
        // The "terminal field" of a 1-segment path like Emp1.dept is the
        // ref field itself.
        let prefix: Vec<usize> = if resolved.hops.is_empty() {
            resolved.terminal_fields.clone()
        } else {
            resolved.hops.clone()
        };
        let link = self
            .catalog
            .links()
            .find(|l| l.set == resolved.set && l.prefix == prefix)
            .map(|l| l.id)
            .ok_or_else(|| {
                DbError::Unsupported(format!(
                    "no inverted path covers {dotted:?}; replicate a path through it first"
                ))
            })?;
        self.inverse(link, target)
    }

    /// All live member OIDs of a set, in physical order.
    pub fn scan_set(&self, set_name: &str) -> Result<Vec<Oid>> {
        let set = self.catalog.set(self.catalog.set_id(set_name)?).clone();
        let hf = HeapFile::open(set.file);
        let mut out = Vec::new();
        let mut scan = hf.scan(&self.sm)?;
        while let Some((oid, _, _)) = scan.next_record()? {
            out.push(oid);
        }
        Ok(out)
    }

    /// Number of members of a set.
    pub fn set_len(&self, set_name: &str) -> Result<u64> {
        let set = self.catalog.set(self.catalog.set_id(set_name)?).clone();
        Ok(HeapFile::open(set.file).count(&self.sm)?)
    }
}
