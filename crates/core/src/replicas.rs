//! Separate replication's shared replica objects (`S'`, §5).
//!
//! For each replica group (one per source set × hop chain), referenced
//! terminal objects get one small replica object in the group's file,
//! holding the group's replicated field values. The terminal object keeps
//! an [`Annotation::ReplicaAnchor`] (replica OID + refcount); source
//! objects keep an [`Annotation::ReplicaRef`].

use crate::error::{DbError, Result};
use crate::objects::{read_object, write_object, REPLICA_TAG};
use fieldrep_catalog::{Catalog, GroupDef};
use fieldrep_model::{Annotation, Object, Value};
use fieldrep_storage::{HeapFile, Oid, StorageManager};

/// The values a replica object for `group` should hold, extracted from
/// the terminal object (in `group.fields` order).
pub fn group_values(group: &GroupDef, terminal_obj: &Object) -> Vec<Value> {
    group
        .fields
        .iter()
        .map(|&i| terminal_obj.values[i].clone())
        .collect()
}

/// Read a replica object's values.
pub fn read_replica(sm: &StorageManager, group: &GroupDef, oid: Oid) -> Result<Vec<Value>> {
    let hf = HeapFile::open(group.file);
    let (tag, payload) = hf.read(sm, oid)?;
    debug_assert_eq!(tag, REPLICA_TAG);
    Ok(Value::decode_list(&payload)?)
}

/// Overwrite a replica object's values.
pub fn write_replica(
    sm: &StorageManager,
    group: &GroupDef,
    oid: Oid,
    values: &[Value],
) -> Result<()> {
    let hf = HeapFile::open(group.file);
    hf.rec_update(sm, oid, &Value::encode_list(values))?;
    Ok(())
}

/// Find the anchor annotation for `group` on a terminal object.
pub fn find_anchor(obj: &Object, group: u16) -> Option<(usize, Oid, u32)> {
    obj.annotations
        .iter()
        .enumerate()
        .find_map(|(i, a)| match a {
            Annotation::ReplicaAnchor {
                group: g,
                oid,
                refcount,
            } if *g == group => Some((i, *oid, *refcount)),
            _ => None,
        })
}

/// Find the replica-ref annotation for `group` on a source object.
pub fn find_replica_ref(obj: &Object, group: u16) -> Option<(usize, Oid)> {
    obj.annotations
        .iter()
        .enumerate()
        .find_map(|(i, a)| match a {
            Annotation::ReplicaRef { group: g, oid } if *g == group => Some((i, *oid)),
            _ => None,
        })
}

/// Ensure a replica object exists for terminal object `target` and add
/// `delta` to its refcount. Creates the replica (from the terminal's
/// current values) on first use. Returns the replica OID.
pub fn anchor_acquire(
    sm: &StorageManager,
    cat: &Catalog,
    group: &GroupDef,
    target: Oid,
    delta: u32,
) -> Result<Oid> {
    let mut obj = read_object(sm, cat, target)?;
    match find_anchor(&obj, group.id.0) {
        Some((i, roid, rc)) => {
            obj.annotations[i] = Annotation::ReplicaAnchor {
                group: group.id.0,
                oid: roid,
                refcount: rc + delta,
            };
            write_object(sm, cat, target, &obj)?;
            Ok(roid)
        }
        None => {
            let values = group_values(group, &obj);
            let hf = HeapFile::open(group.file);
            let roid = hf.rec_insert(sm, REPLICA_TAG, &Value::encode_list(&values))?;
            obj.annotations.push(Annotation::ReplicaAnchor {
                group: group.id.0,
                oid: roid,
                refcount: delta,
            });
            write_object(sm, cat, target, &obj)?;
            Ok(roid)
        }
    }
}

/// Drop `delta` references from `target`'s anchor for `group`; deletes the
/// replica object and the anchor when the count reaches zero.
pub fn anchor_release(
    sm: &StorageManager,
    cat: &Catalog,
    group: &GroupDef,
    target: Oid,
    delta: u32,
) -> Result<()> {
    let mut obj = read_object(sm, cat, target)?;
    let (i, roid, rc) = find_anchor(&obj, group.id.0).ok_or_else(|| {
        DbError::Unsupported(format!(
            "anchor_release on {target} without an anchor for group {}",
            group.id.0
        ))
    })?;
    debug_assert!(rc >= delta, "refcount underflow");
    let rc = rc.saturating_sub(delta);
    if rc == 0 {
        let hf = HeapFile::open(group.file);
        hf.rec_delete(sm, roid)?;
        obj.annotations.remove(i);
    } else {
        obj.annotations[i] = Annotation::ReplicaAnchor {
            group: group.id.0,
            oid: roid,
            refcount: rc,
        };
    }
    write_object(sm, cat, target, &obj)?;
    Ok(())
}
