//! Kill-and-recover walkthrough: build a replicated world over a
//! file-backed database + write-ahead log, commit updates, "kill" the
//! process without checkpointing, tear the log tail (as a crash during
//! the final append would), and reopen — printing what recovery saw.
//!
//! Run: `cargo run --release -p fieldrep-core --example kill_recover`
//!
//! The transcript in EXPERIMENTS.md ("Durability") is this program's
//! output.

use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::{FileDisk, FileWalStore};

const UPDATES: usize = 25;

fn cfg() -> DbConfig {
    DbConfig {
        pool_pages: 512,
        inline_link_threshold: 4,
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("fieldrep-kill-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Build the Figure-1 world, replicate one path per strategy, and
    // checkpoint (save() flushes, fsyncs, and truncates the log).
    let mut db = Database::with_disk_and_wal(
        Box::new(FileDisk::open(&dir).unwrap()),
        Box::new(FileWalStore::open(&dir).unwrap()),
        cfg(),
    )
    .unwrap();
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let org = db
        .insert("Org", vec![Value::Str("acme".into()), Value::Int(1000)])
        .unwrap();
    let dept = db
        .insert(
            "Dept",
            vec![Value::Str("dept0".into()), Value::Int(100), Value::Ref(org)],
        )
        .unwrap();
    for i in 0..64 {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp{i}")),
                Value::Int(i),
                Value::Ref(dept),
            ],
        )
        .unwrap();
    }
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    db.save().unwrap();
    println!("checkpointed; wal.log is empty again\n");

    // Committed updates: each update_txn returns only after its log
    // records are fsynced. Nothing here is ever written back to the
    // data files — the WAL is the only durable trace.
    for i in 0..UPDATES {
        db.update_txn(dept, &[("name", Value::Str(format!("rev-{i}")))])
            .unwrap();
    }
    let s = db.sm().wal_stats();
    println!(
        "after {UPDATES} committed updates: last_lsn={} durable_lsn={} \
         appends={} fsyncs={} coalesced={} bytes={}",
        s.last_lsn, s.durable_lsn, s.appends, s.fsyncs, s.coalesced, s.bytes
    );
    drop(db); // kill -9: no save, no checkpoint, no flush

    // A crash during the final append leaves a torn frame; simulate it
    // by chopping the last 13 bytes of the log.
    let wal_path = dir.join("wal.log");
    let len = std::fs::metadata(&wal_path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(len - 13).unwrap();
    println!("killed; tore the log tail: {len} -> {} bytes\n", len - 13);

    // Reopen: recovery scans the log, discards the torn tail, and
    // replays every committed transaction's page images.
    let db = Database::open_with_wal(
        Box::new(FileDisk::open(&dir).unwrap()),
        Box::new(FileWalStore::open(&dir).unwrap()),
        cfg(),
    )
    .unwrap();
    let r = db.sm().recovery_report();
    println!(
        "recovery: scanned_records={} truncated_bytes={} committed_txns={} \
         replayed_pages={} last_lsn={}",
        r.scanned_records, r.truncated_bytes, r.committed_txns, r.replayed_pages, r.last_lsn
    );
    let Value::Str(name) = db.get_field(dept, "name").unwrap() else {
        panic!("dept name is a string");
    };
    println!("recovered dept.name = {name:?}");
    assert_eq!(
        name,
        format!("rev-{}", UPDATES - 2),
        "the torn final transaction is discarded; every earlier commit survives"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
