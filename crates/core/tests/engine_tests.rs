//! End-to-end engine tests: the employee database of Figure 1, exercised
//! through every replication scenario in §3–§5 of the paper, with full
//! invariant checking after each step.

mod common;

use common::check_consistency;
use fieldrep_catalog::{IndexKind, Strategy};
use fieldrep_core::{Database, DbConfig, DbError};
use fieldrep_model::{Annotation, FieldType, TypeDef, Value};
use fieldrep_storage::Oid;

/// Build the Figure-1 schema: ORG ← DEPT ← EMP, sets Org/Dept/Emp1/Emp2.
fn employee_db(cfg: DbConfig) -> Database {
    let mut db = Database::in_memory(cfg);
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("age", FieldType::Int),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db.create_set("Emp2", "EMP").unwrap();
    db
}

fn org(db: &mut Database, name: &str, budget: i64) -> Oid {
    db.insert("Org", vec![Value::Str(name.into()), Value::Int(budget)])
        .unwrap()
}

fn dept(db: &mut Database, name: &str, budget: i64, org: Oid) -> Oid {
    db.insert(
        "Dept",
        vec![Value::Str(name.into()), Value::Int(budget), Value::Ref(org)],
    )
    .unwrap()
}

fn emp(db: &mut Database, set: &str, name: &str, age: i64, salary: i64, dept: Oid) -> Oid {
    db.insert(
        set,
        vec![
            Value::Str(name.into()),
            Value::Int(age),
            Value::Int(salary),
            Value::Ref(dept),
        ],
    )
    .unwrap()
}

/// A small standard population: 2 orgs, 3 depts, employees in both sets.
struct World {
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
    emps1: Vec<Oid>,
    emps2: Vec<Oid>,
}

fn populate(db: &mut Database) -> World {
    let o0 = org(db, "Acme", 1_000_000);
    let o1 = org(db, "Globex", 2_000_000);
    let d0 = dept(db, "Shoe", 10_000, o0);
    let d1 = dept(db, "Toy", 20_000, o0);
    let d2 = dept(db, "Tool", 30_000, o1);
    let mut emps1 = Vec::new();
    for i in 0..9 {
        let d = [d0, d1, d2][i % 3];
        emps1.push(emp(
            db,
            "Emp1",
            &format!("e{i}"),
            20 + i as i64,
            50_000 + 1000 * i as i64,
            d,
        ));
    }
    let mut emps2 = Vec::new();
    for i in 0..4 {
        let d = [d0, d2][i % 2];
        emps2.push(emp(db, "Emp2", &format!("f{i}"), 30 + i as i64, 60_000, d));
    }
    World {
        orgs: vec![o0, o1],
        depts: vec![d0, d1, d2],
        emps1,
        emps2,
    }
}

fn sval(s: &str) -> Value {
    Value::Str(s.into())
}

// ---------------------------------------------------------------- in-place

#[test]
fn inplace_1level_read_after_replicate() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Shoe")])
    );
    assert_eq!(
        db.path_values(w.emps1[1], p).unwrap(),
        Some(vec![sval("Toy")])
    );
    // Emp2 is not replicated; deref still works as the join baseline.
    assert_eq!(
        db.deref_path(w.emps2[0], "dept.name").unwrap(),
        Some(vec![sval("Shoe")])
    );
}

#[test]
fn inplace_update_propagates_to_all_referencing() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.update(w.depts[0], &[("name", sval("Footwear"))])
        .unwrap();
    check_consistency(&mut db);
    // Employees 0, 3, 6 reference dept 0.
    for &e in [&w.emps1[0], &w.emps1[3], &w.emps1[6]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Footwear")]));
    }
    // Others untouched.
    assert_eq!(
        db.path_values(w.emps1[1], p).unwrap(),
        Some(vec![sval("Toy")])
    );
}

#[test]
fn inplace_insert_after_replicate_attaches() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let e = emp(&mut db, "Emp1", "newbie", 25, 70_000, w.depts[2]);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Tool")]));
    check_consistency(&mut db);
}

#[test]
fn inplace_source_ref_update_retargets() {
    // §4.1.1 update E.dept: delete-actions then insert-actions.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.update(w.emps1[0], &[("dept", Value::Ref(w.depts[2]))])
        .unwrap();
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Tool")])
    );
    check_consistency(&mut db);
    // Updating the old dept's name no longer touches e0.
    db.update(w.depts[0], &[("name", sval("X"))]).unwrap();
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Tool")])
    );
    check_consistency(&mut db);
}

#[test]
fn inplace_delete_source_cleans_links() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    // Move everyone off dept 1 except e1, then delete e1: dept 1's link
    // store must disappear entirely.
    db.update(w.emps1[4], &[("dept", Value::Ref(w.depts[0]))])
        .unwrap();
    db.update(w.emps1[7], &[("dept", Value::Ref(w.depts[0]))])
        .unwrap();
    db.delete(w.emps1[1]).unwrap();
    check_consistency(&mut db);
    let d1 = db.get(w.depts[1]).unwrap();
    assert!(
        d1.annotations.is_empty(),
        "dept 1 should carry no link annotations: {:?}",
        d1.annotations
    );
}

#[test]
fn inplace_2level_and_intermediate_update() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db
        .replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Acme")])
    );
    assert_eq!(
        db.path_values(w.emps1[2], p).unwrap(),
        Some(vec![sval("Globex")])
    );

    // Terminal update: O.name propagates through two levels.
    db.update(w.orgs[0], &[("name", sval("Acme Corp"))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Acme Corp")])
    );

    // Intermediate update: D.org moves dept 0 (and employees 0,3,6) to
    // Globex — "X.name will have to replace O.name in all of the objects
    // in Emp1 that reference D" (§4.1.2).
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps1[0], &w.emps1[3], &w.emps1[6]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Globex")]));
    }
}

#[test]
fn inplace_2level_ripple_delete() {
    // §4.1.2: deleting the last employee of a dept may ripple: the dept's
    // link object disappears AND the dept leaves the org's link object.
    let mut db = employee_db(DbConfig::default());
    let o = org(&mut db, "Solo", 1);
    let d = dept(&mut db, "OnlyDept", 2, o);
    let e = emp(&mut db, "Emp1", "only", 40, 1, d);
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    check_consistency(&mut db);
    let oobj = db.get(o).unwrap();
    assert!(!oobj.annotations.is_empty(), "org is on the path");
    db.delete(e).unwrap();
    check_consistency(&mut db);
    let oobj = db.get(o).unwrap();
    assert!(oobj.annotations.is_empty(), "org left the path");
    let dobj = db.get(d).unwrap();
    assert!(dobj.annotations.is_empty(), "dept left the path");
}

#[test]
fn multiple_paths_share_links_and_propagate_independently() {
    // §4.1.4's example with shared prefixes.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p_budget = db.replicate("Emp1.dept.budget", Strategy::InPlace).unwrap();
    let p_name = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let p_orgname = db
        .replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    check_consistency(&mut db);

    // One link annotation on each dept despite three paths (link shared).
    let d0 = db.get(w.depts[0]).unwrap();
    let n_links = d0
        .annotations
        .iter()
        .filter(|a| {
            matches!(
                a,
                Annotation::LinkRef { .. } | Annotation::InlineLink { .. }
            )
        })
        .count();
    assert_eq!(
        n_links, 1,
        "shared prefix ⇒ one link store on D: {:?}",
        d0.annotations
    );

    db.update(
        w.depts[0],
        &[("budget", Value::Int(77)), ("name", sval("Both"))],
    )
    .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p_budget).unwrap(),
        Some(vec![Value::Int(77)])
    );
    assert_eq!(
        db.path_values(w.emps1[0], p_name).unwrap(),
        Some(vec![sval("Both")])
    );
    assert_eq!(
        db.path_values(w.emps1[0], p_orgname).unwrap(),
        Some(vec![sval("Acme")])
    );
}

#[test]
fn collapse_path_replicates_the_reference() {
    // §3.3.3: replicate Emp1.dept.org collapses a 2-level path.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.org", Strategy::InPlace).unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![Value::Ref(w.orgs[0])])
    );
    // Re-targeting D.org updates the replicated reference automatically —
    // "referential integrity could never be violated".
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![Value::Ref(w.orgs[1])])
    );
}

#[test]
fn full_object_replication_all() {
    // §3.3.1: replicate Emp1.dept.all.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.all", Strategy::InPlace).unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![
            sval("Shoe"),
            Value::Int(10_000),
            Value::Ref(w.orgs[0])
        ])
    );
    db.update(w.depts[0], &[("budget", Value::Int(1))]).unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Shoe"), Value::Int(1), Value::Ref(w.orgs[0])])
    );
}

#[test]
fn delete_referenced_object_is_rejected() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    assert!(matches!(
        db.delete(w.depts[0]),
        Err(DbError::StillReferenced(_))
    ));
    // After all referencing employees leave, deletion succeeds.
    db.update(w.emps1[0], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    db.update(w.emps1[3], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    db.update(w.emps1[6], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    db.delete(w.depts[0]).unwrap();
    check_consistency(&mut db);
}

#[test]
fn inline_link_threshold_grows_and_shrinks() {
    // §4.3.1: with threshold 2, one or two referencing employees are kept
    // inline; a third spills into a link object; dropping back to two
    // returns to inline form.
    let mut db = employee_db(DbConfig {
        inline_link_threshold: 2,
        ..DbConfig::default()
    });
    let o = org(&mut db, "O", 1);
    let d_a = dept(&mut db, "A", 1, o);
    let d_b = dept(&mut db, "B", 1, o);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let e1 = emp(&mut db, "Emp1", "x", 1, 1, d_a);
    let e2 = emp(&mut db, "Emp1", "y", 1, 1, d_a);
    check_consistency(&mut db);
    let a = db.get(d_a).unwrap();
    assert!(
        a.annotations
            .iter()
            .any(|x| matches!(x, Annotation::InlineLink { oids, .. } if oids.len() == 2)),
        "two members stay inline: {:?}",
        a.annotations
    );
    let e3 = emp(&mut db, "Emp1", "z", 1, 1, d_a);
    check_consistency(&mut db);
    let a = db.get(d_a).unwrap();
    assert!(
        a.annotations
            .iter()
            .any(|x| matches!(x, Annotation::LinkRef { .. })),
        "three members spill to a link object: {:?}",
        a.annotations
    );
    // Move one member away: back to inline.
    db.update(e3, &[("dept", Value::Ref(d_b))]).unwrap();
    check_consistency(&mut db);
    let a = db.get(d_a).unwrap();
    assert!(
        a.annotations
            .iter()
            .any(|x| matches!(x, Annotation::InlineLink { oids, .. } if oids.len() == 2)),
        "shrinks back to inline: {:?}",
        a.annotations
    );
    let _ = (e1, e2);
}

#[test]
fn zero_threshold_always_uses_link_objects() {
    let mut db = employee_db(DbConfig {
        inline_link_threshold: 0,
        ..DbConfig::default()
    });
    let w = populate(&mut db);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    check_consistency(&mut db);
    let d = db.get(w.depts[0]).unwrap();
    assert!(d
        .annotations
        .iter()
        .any(|a| matches!(a, Annotation::LinkRef { .. })));
}

// ---------------------------------------------------------------- separate

#[test]
fn separate_1level_read_and_update() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Shoe")])
    );
    // A department update touches exactly one replica object, and all
    // sharers observe it.
    db.update(w.depts[0], &[("name", sval("Sneaker"))]).unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps1[0], &w.emps1[3], &w.emps1[6]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Sneaker")]));
    }
}

#[test]
fn separate_group_shares_one_replica_object() {
    // Figure 7: name and budget replicas are stored together; all
    // employees of a dept share one replica object.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p_name = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    let p_budget = db
        .replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p_name).unwrap(),
        Some(vec![sval("Shoe")])
    );
    assert_eq!(
        db.path_values(w.emps1[0], p_budget).unwrap(),
        Some(vec![Value::Int(10_000)])
    );
    // Exactly 3 replica objects (one per referenced dept).
    let group = db.catalog().groups().next().unwrap().clone();
    let n = fieldrep_storage::HeapFile::open(group.file)
        .count(db.sm())
        .unwrap();
    assert_eq!(n, 3);
}

#[test]
fn separate_source_ref_update_repoints() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    db.update(w.emps1[0], &[("dept", Value::Ref(w.depts[2]))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Tool")])
    );
}

#[test]
fn separate_refcount_reaches_zero_and_replica_is_reclaimed() {
    let mut db = employee_db(DbConfig::default());
    let o = org(&mut db, "O", 1);
    let d_a = dept(&mut db, "A", 1, o);
    let d_b = dept(&mut db, "B", 2, o);
    db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    let e1 = emp(&mut db, "Emp1", "x", 1, 1, d_a);
    let e2 = emp(&mut db, "Emp1", "y", 1, 1, d_a);
    check_consistency(&mut db);
    db.update(e1, &[("dept", Value::Ref(d_b))]).unwrap();
    check_consistency(&mut db);
    db.delete(e2).unwrap();
    check_consistency(&mut db);
    // d_a's replica must be gone; deleting d_a must now succeed.
    let a = db.get(d_a).unwrap();
    assert!(a.annotations.is_empty());
    db.delete(d_a).unwrap();
    check_consistency(&mut db);
}

#[test]
fn separate_2level_intermediate_update_repoints_sources() {
    // §5.2: "If D2.org is changed from O2 to O1, then E3 must be updated
    // so that it references R1, rather than R2."
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db
        .replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Acme")])
    );

    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps1[0], &w.emps1[3], &w.emps1[6]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Globex")]));
    }
    // Terminal data update still costs one replica write and is seen by
    // everyone.
    db.update(w.orgs[1], &[("name", sval("Globex LLC"))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p).unwrap(),
        Some(vec![sval("Globex LLC")])
    );
}

#[test]
fn separate_group_extension_resyncs_replicas() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p_name = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    // Update before extension so replica objects must be re-materialised
    // with both fields.
    db.update(w.depts[0], &[("budget", Value::Int(42))])
        .unwrap();
    let p_budget = db
        .replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p_budget).unwrap(),
        Some(vec![Value::Int(42)])
    );
    assert_eq!(
        db.path_values(w.emps1[0], p_name).unwrap(),
        Some(vec![sval("Shoe")])
    );
}

// ------------------------------------------------------------ mixed & misc

#[test]
fn both_strategies_coexist_and_share_links() {
    // §5.3: in-place and separate support at the same time.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p_ip = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let p_sep = db
        .replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    check_consistency(&mut db);
    db.update(
        w.depts[0],
        &[("name", sval("N")), ("org", Value::Ref(w.orgs[1]))],
    )
    .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps1[0], p_ip).unwrap(),
        Some(vec![sval("N")])
    );
    assert_eq!(
        db.path_values(w.emps1[0], p_sep).unwrap(),
        Some(vec![sval("Globex")])
    );
}

#[test]
fn instance_level_replication_leaves_other_sets_alone() {
    // §3.2: replication is per-instance (Emp1), not per-type (EMP).
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    check_consistency(&mut db);
    let f0 = db.get(w.emps2[0]).unwrap();
    assert!(
        f0.annotations.is_empty(),
        "Emp2 members carry no replication state"
    );
}

#[test]
fn null_and_broken_chains() {
    let mut db = employee_db(DbConfig::default());
    let o = org(&mut db, "O", 1);
    let d = dept(&mut db, "D", 1, o);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let p2 = db
        .replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    // An employee with a NULL dept participates in nothing.
    let e = db
        .insert(
            "Emp1",
            vec![
                sval("lost"),
                Value::Int(1),
                Value::Int(1),
                Value::Ref(Oid::NULL),
            ],
        )
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), None);
    assert_eq!(db.path_values(e, p2).unwrap(), None);
    // Pointing it at a dept materialises both paths.
    db.update(e, &[("dept", Value::Ref(d))]).unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("D")]));
    assert_eq!(db.path_values(e, p2).unwrap(), Some(vec![sval("O")]));
    // And back to NULL detaches cleanly.
    db.update(e, &[("dept", Value::Ref(Oid::NULL))]).unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), None);
}

#[test]
fn path_index_follows_replica_updates() {
    // §3.3.4: build btree on Emp1.dept.org.name; the index maps org names
    // directly to Emp1 objects and follows propagation.
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let p = db
        .replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let idx = db
        .create_index("Emp1.dept.org.name", IndexKind::Unclustered)
        .unwrap();
    let file = db.catalog().index(idx).file;
    let tree = fieldrep_btree::BTreeIndex::open(file);
    let key = fieldrep_core::value_key(&sval("Acme"));
    let hits = tree.lookup(db.sm(), &key).unwrap();
    // Emp1 members under Acme: depts 0,1 → employees 0,1,3,4,6,7.
    assert_eq!(hits.len(), 6);

    // Rename the org: index keys move.
    db.update(w.orgs[0], &[("name", sval("Acme Corp"))])
        .unwrap();
    check_consistency(&mut db);
    let tree = fieldrep_btree::BTreeIndex::open(file);
    assert!(tree.lookup(db.sm(), &key).unwrap().is_empty());
    let key2 = fieldrep_core::value_key(&sval("Acme Corp"));
    assert_eq!(tree.lookup(db.sm(), &key2).unwrap().len(), 6);

    // Retarget one employee: its entry moves too.
    db.update(w.emps1[0], &[("dept", Value::Ref(w.depts[2]))])
        .unwrap();
    check_consistency(&mut db);
    let tree = fieldrep_btree::BTreeIndex::open(file);
    assert_eq!(tree.lookup(db.sm(), &key2).unwrap().len(), 5);
    let _ = p;
}

#[test]
fn base_field_index_maintenance() {
    let mut db = employee_db(DbConfig::default());
    let w = populate(&mut db);
    let idx = db
        .create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    let file = db.catalog().index(idx).file;
    let tree = fieldrep_btree::BTreeIndex::open(file);
    assert_eq!(tree.entry_count(db.sm()).unwrap(), 9);

    db.update(w.emps1[0], &[("salary", Value::Int(999_999))])
        .unwrap();
    let key = fieldrep_core::value_key(&Value::Int(999_999));
    assert_eq!(tree.lookup(db.sm(), &key).unwrap(), vec![w.emps1[0]]);

    db.delete(w.emps1[0]).unwrap();
    assert!(tree.lookup(db.sm(), &key).unwrap().is_empty());
    assert_eq!(tree.entry_count(db.sm()).unwrap(), 8);

    // Inserts index themselves.
    let e = emp(&mut db, "Emp1", "idx", 1, 123_456, w.depts[1]);
    let key = fieldrep_core::value_key(&Value::Int(123_456));
    assert_eq!(tree.lookup(db.sm(), &key).unwrap(), vec![e]);
}

#[test]
fn replicate_before_and_after_population_agree() {
    // Declaring replication before inserts (incremental maintenance) and
    // after inserts (bulk build) must produce identical logical state.
    let cfg = DbConfig::default();
    let mut before = employee_db(cfg.clone());
    before
        .replicate("Emp1.dept.name", Strategy::InPlace)
        .unwrap();
    before
        .replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    let wb = populate(&mut before);
    check_consistency(&mut before);

    let mut after = employee_db(cfg);
    let wa = populate(&mut after);
    let p1 = after
        .replicate("Emp1.dept.name", Strategy::InPlace)
        .unwrap();
    let p2 = after
        .replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();
    check_consistency(&mut after);

    for (eb, ea) in wb.emps1.iter().zip(&wa.emps1) {
        assert_eq!(
            before.path_values(*eb, p1).unwrap(),
            after.path_values(*ea, p1).unwrap()
        );
        assert_eq!(
            before.path_values(*eb, p2).unwrap(),
            after.path_values(*ea, p2).unwrap()
        );
    }
}

#[test]
fn three_level_path() {
    // Deeper than anything in the paper's examples: a 3-level chain
    // EMP → DEPT → ORG → ORG (self-ref parent).
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![
            ("name", FieldType::Str),
            ("parent", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let root = db
        .insert("Org", vec![sval("Root"), Value::Ref(Oid::NULL)])
        .unwrap();
    let sub = db
        .insert("Org", vec![sval("Sub"), Value::Ref(root)])
        .unwrap();
    let d = db.insert("Dept", vec![sval("D"), Value::Ref(sub)]).unwrap();
    let e = db.insert("Emp1", vec![sval("E"), Value::Ref(d)]).unwrap();

    let p = db
        .replicate("Emp1.dept.org.parent.name", Strategy::InPlace)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Root")]));

    // Terminal update three levels away.
    db.update(root, &[("name", sval("Root2"))]).unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Root2")]));

    // Intermediate at level 1: Sub re-parents to a new org.
    let root2 = db
        .insert("Org", vec![sval("Other"), Value::Ref(Oid::NULL)])
        .unwrap();
    db.update(sub, &[("parent", Value::Ref(root2))]).unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("Other")]));
}
