//! Property test for the replication engine (DESIGN.md invariants 1–3):
//! after ANY sequence of inserts, deletes, scalar updates and reference
//! re-targets, every replicated structure must agree with the forward
//! references — for in-place and separate strategies simultaneously, over
//! 1- and 2-level paths with shared prefixes.

mod common;

use common::check_consistency;
use fieldrep_catalog::{Propagation, Strategy as RepStrategy};
use fieldrep_core::{Database, DbConfig, DbError};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::Oid;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    InsertEmp(usize, u8),  // dept pick (may be "null"), salary
    InsertDept(usize, u8), // org pick, budget
    DeleteEmp(usize),
    DeleteDept(usize),
    RetargetEmp(usize, usize),  // emp pick, dept pick
    RetargetDept(usize, usize), // dept pick, org pick
    RenameDept(usize, u8),
    RenameOrg(usize, u8),
    BudgetDept(usize, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..100usize, any::<u8>()).prop_map(|(d, s)| Op::InsertEmp(d, s)),
        1 => (0..100usize, any::<u8>()).prop_map(|(o, b)| Op::InsertDept(o, b)),
        2 => (0..100usize).prop_map(Op::DeleteEmp),
        1 => (0..100usize).prop_map(Op::DeleteDept),
        3 => (0..100usize, 0..100usize).prop_map(|(e, d)| Op::RetargetEmp(e, d)),
        2 => (0..100usize, 0..100usize).prop_map(|(d, o)| Op::RetargetDept(d, o)),
        2 => (0..100usize, any::<u8>()).prop_map(|(d, n)| Op::RenameDept(d, n)),
        2 => (0..100usize, any::<u8>()).prop_map(|(o, n)| Op::RenameOrg(o, n)),
        2 => (0..100usize, any::<u8>()).prop_map(|(d, b)| Op::BudgetDept(d, b)),
    ]
}

fn build_db_full(
    threshold: usize,
    propagation: Propagation,
    collapsed_extra: bool,
) -> (Database, Vec<Oid>, Vec<Oid>, Vec<Oid>) {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 1024,
        inline_link_threshold: threshold,
    });
    db.define_type(TypeDef::new(
        "ORG",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("name2", FieldType::Str),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let mut orgs = vec![];
    for i in 0..3 {
        orgs.push(
            db.insert(
                "Org",
                vec![
                    Value::Str(format!("o{i}")),
                    Value::Int(i),
                    Value::Str(format!("o{i}b")),
                ],
            )
            .unwrap(),
        );
    }
    let mut depts = vec![];
    for i in 0..4 {
        depts.push(
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("d{i}")),
                    Value::Int(i),
                    Value::Ref(orgs[(i as usize) % 3]),
                ],
            )
            .unwrap(),
        );
    }
    // The full §4.1.4 mix: shared prefixes, both strategies, a collapse
    // path, 1- and 2-level paths.
    db.replicate_with("Emp1.dept.name", RepStrategy::InPlace, propagation)
        .unwrap();
    db.replicate_with("Emp1.dept.org.name", RepStrategy::InPlace, propagation)
        .unwrap();
    db.replicate_with("Emp1.dept.org", RepStrategy::InPlace, propagation)
        .unwrap();
    db.replicate_with("Emp1.dept.budget", RepStrategy::Separate, propagation)
        .unwrap();
    db.replicate_with("Emp1.dept.org.budget", RepStrategy::Separate, propagation)
        .unwrap();
    if collapsed_extra {
        // §4.3.3: a collapsed 2-level path alongside everything else.
        db.replicate_collapsed("Emp1.dept.org.name2", propagation)
            .unwrap();
    }
    (db, orgs, depts, vec![])
}

fn run_ops(threshold: usize, ops: Vec<Op>) {
    run_ops_with(threshold, Propagation::Eager, ops);
}

fn run_ops_with(threshold: usize, propagation: Propagation, ops: Vec<Op>) {
    run_ops_full(threshold, propagation, false, ops);
}

fn run_ops_full(threshold: usize, propagation: Propagation, collapsed: bool, ops: Vec<Op>) {
    let (mut db, orgs, mut depts, mut emps) = build_db_full(threshold, propagation, collapsed);
    let mut tick = 0usize;

    for op in ops {
        match op {
            Op::InsertEmp(d, s) => {
                // Index 0 means a NULL dept (broken chain).
                let dept = if d % (depts.len() + 1) == 0 {
                    Oid::NULL
                } else {
                    depts[(d - 1) % depts.len()]
                };
                let e = db
                    .insert(
                        "Emp1",
                        vec![
                            Value::Str("e".into()),
                            Value::Int(s as i64),
                            Value::Ref(dept),
                        ],
                    )
                    .unwrap();
                emps.push(e);
            }
            Op::InsertDept(o, b) => {
                let d = db
                    .insert(
                        "Dept",
                        vec![
                            Value::Str("d".into()),
                            Value::Int(b as i64),
                            Value::Ref(orgs[o % orgs.len()]),
                        ],
                    )
                    .unwrap();
                depts.push(d);
            }
            Op::DeleteEmp(i) => {
                if emps.is_empty() {
                    continue;
                }
                let e = emps.remove(i % emps.len());
                db.delete(e).unwrap();
            }
            Op::DeleteDept(i) => {
                if depts.len() <= 1 {
                    continue;
                }
                let idx = i % depts.len();
                match db.delete(depts[idx]) {
                    Ok(()) => {
                        depts.remove(idx);
                    }
                    Err(DbError::StillReferenced(_)) => {} // fine: in use
                    Err(e) => panic!("unexpected delete error: {e}"),
                }
            }
            Op::RetargetEmp(e, d) => {
                if emps.is_empty() {
                    continue;
                }
                let emp = emps[e % emps.len()];
                let dept = if d % (depts.len() + 1) == 0 {
                    Oid::NULL
                } else {
                    depts[(d - 1) % depts.len()]
                };
                db.update(emp, &[("dept", Value::Ref(dept))]).unwrap();
            }
            Op::RetargetDept(d, o) => {
                let dept = depts[d % depts.len()];
                let org = if o % (orgs.len() + 1) == 0 {
                    Oid::NULL
                } else {
                    orgs[(o - 1) % orgs.len()]
                };
                db.update(dept, &[("org", Value::Ref(org))]).unwrap();
            }
            Op::RenameDept(d, n) => {
                let dept = depts[d % depts.len()];
                db.update(dept, &[("name", Value::Str(format!("dn{n}")))])
                    .unwrap();
            }
            Op::RenameOrg(o, n) => {
                let org = orgs[o % orgs.len()];
                db.update(
                    org,
                    &[
                        ("name", Value::Str(format!("on{n}"))),
                        ("name2", Value::Str(format!("on{n}b"))),
                    ],
                )
                .unwrap();
            }
            Op::BudgetDept(d, b) => {
                let dept = depts[d % depts.len()];
                db.update(dept, &[("budget", Value::Int(b as i64))])
                    .unwrap();
            }
        }
        // Deferred mode: sync sporadically mid-run (every 7th op) so the
        // lazy machinery interleaves with further mutations.
        tick += 1;
        if propagation == Propagation::Deferred && tick.is_multiple_of(7) {
            db.sync_all_pending().unwrap();
        }
    }
    db.sync_all_pending().unwrap();
    check_consistency(&mut db);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(28))]

    /// With link objects always materialised (threshold 0).
    #[test]
    fn engine_invariants_hold_no_inlining(ops in proptest::collection::vec(op(), 1..60)) {
        run_ops(0, ops);
    }

    /// With the §4.3.1 inline optimization active (threshold 2), so that
    /// links flip between inline and object form under churn.
    #[test]
    fn engine_invariants_hold_with_inlining(ops in proptest::collection::vec(op(), 1..60)) {
        run_ops(2, ops);
    }

    /// With deferred propagation (§8): after syncing, all invariants hold
    /// exactly as in eager mode, under interleaved syncs and mutations.
    #[test]
    fn engine_invariants_hold_deferred(ops in proptest::collection::vec(op(), 1..60)) {
        run_ops_with(0, Propagation::Deferred, ops);
    }

    /// With a §4.3.3 collapsed path alongside the normal mix.
    #[test]
    fn engine_invariants_hold_collapsed(ops in proptest::collection::vec(op(), 1..60)) {
        run_ops_full(0, Propagation::Eager, true, ops);
    }
}
