//! Save/reopen tests: a file-backed database survives a full process
//! round trip — schema, data, replication state, indexes and all.

mod common;

use common::check_consistency;
use fieldrep_catalog::{persist, IndexKind, LinkId, Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, PathExpr, TypeDef, Value};
use fieldrep_query::{Assign, Filter, ReadQuery, UpdateQuery};
use fieldrep_storage::{FileDisk, MemDisk, StorageManager};

fn schema(db: &mut Database) {
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
}

#[test]
fn catalog_image_roundtrip() {
    // Pure encode/decode equivalence, observed through the public API.
    let sm = StorageManager::in_memory(64);
    let mut cat = fieldrep_catalog::Catalog::new();
    cat.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("pad", FieldType::Pad(9))],
    ))
    .unwrap();
    cat.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    let f1 = sm.create_file().unwrap();
    let f2 = sm.create_file().unwrap();
    cat.create_set("Dept", "DEPT", f1).unwrap();
    cat.create_set("Org", "ORG", f2).unwrap();
    cat.declare_replication_with(
        &PathExpr::parse("Dept.org.name").unwrap(),
        Strategy::InPlace,
        Propagation::Deferred,
        &sm,
    )
    .unwrap();

    let image = persist::encode(&cat);
    let back = persist::decode(&image).unwrap();
    assert_eq!(back.set_id("Dept").unwrap(), cat.set_id("Dept").unwrap());
    assert_eq!(back.paths().count(), 1);
    let p = back.paths().next().unwrap();
    assert_eq!(p.expr.dotted(), "Dept.org.name");
    assert_eq!(p.strategy, Strategy::InPlace);
    assert_eq!(p.propagation, Propagation::Deferred);
    assert_eq!(p.links, vec![LinkId(1)]);
    assert_eq!(back.link(LinkId(1)).refcount, 1);
    assert_eq!(
        back.type_def(back.type_id("ORG").unwrap()).fields[1].ftype,
        FieldType::Pad(9)
    );

    // Corrupt images are rejected.
    assert!(persist::decode(&image[..image.len() - 3]).is_err());
    assert!(persist::decode(b"NOTACATALOG").is_err());
    let mut trailing = image.clone();
    trailing.push(0);
    assert!(persist::decode(&trailing).is_err());
}

#[test]
fn file_backed_save_and_reopen_full_stack() {
    let dir = std::env::temp_dir().join(format!("fieldrep-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (d, e0) = {
        let mut db =
            Database::with_disk(Box::new(FileDisk::open(&dir).unwrap()), DbConfig::default());
        schema(&mut db);
        let o = db
            .insert("Org", vec![Value::Str("Acme".into()), Value::Int(1)])
            .unwrap();
        let d = db
            .insert(
                "Dept",
                vec![Value::Str("Shoe".into()), Value::Int(2), Value::Ref(o)],
            )
            .unwrap();
        let mut e0 = None;
        for i in 0..200 {
            let e = db
                .insert(
                    "Emp1",
                    vec![
                        Value::Str(format!("e{i}")),
                        Value::Int(1000 + i),
                        Value::Ref(d),
                    ],
                )
                .unwrap();
            e0.get_or_insert(e);
        }
        db.create_index("Emp1.salary", IndexKind::Unclustered)
            .unwrap();
        db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
        db.replicate("Emp1.dept.org.name", Strategy::Separate)
            .unwrap();
        db.save().unwrap();
        (d, e0.unwrap())
    };

    // Reopen from the same directory: everything intact and operational.
    let mut db =
        Database::open(Box::new(FileDisk::open(&dir).unwrap()), DbConfig::default()).unwrap();
    assert_eq!(db.set_len("Emp1").unwrap(), 200);
    check_consistency(&mut db);

    // Queries use the reopened index and replicas.
    let res = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(1000),
            hi: Value::Int(1004),
        })
        .project(["name", "dept.name", "dept.org.name"])
        .run(&mut db)
        .unwrap();
    assert_eq!(res.rows.len(), 5);
    assert_eq!(res.rows[0][1], Some(Value::Str("Shoe".into())));
    assert_eq!(res.rows[0][2], Some(Value::Str("Acme".into())));

    // Mutations keep propagating after reopen.
    db.update(d, &[("name", Value::Str("Footwear".into()))])
        .unwrap();
    check_consistency(&mut db);
    let p = db.catalog().paths().next().unwrap().id;
    assert_eq!(
        db.path_values(e0, p).unwrap(),
        Some(vec![Value::Str("Footwear".into())])
    );

    // Inserts and update queries too.
    db.insert(
        "Emp1",
        vec![Value::Str("new".into()), Value::Int(9999), Value::Ref(d)],
    )
    .unwrap();
    UpdateQuery::on("Dept")
        .assign("budget", Assign::Increment(5))
        .run(&mut db)
        .unwrap();
    check_consistency(&mut db);

    // Save again and reopen once more.
    db.save().unwrap();
    drop(db);
    let mut db =
        Database::open(Box::new(FileDisk::open(&dir).unwrap()), DbConfig::default()).unwrap();
    assert_eq!(db.set_len("Emp1").unwrap(), 201);
    check_consistency(&mut db);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_without_save_fails_cleanly() {
    let disk = MemDisk::new();
    assert!(Database::open(Box::new(disk), DbConfig::default()).is_err());
}

#[test]
fn save_syncs_deferred_work() {
    let dir = std::env::temp_dir().join(format!("fieldrep-persist-def-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db =
            Database::with_disk(Box::new(FileDisk::open(&dir).unwrap()), DbConfig::default());
        schema(&mut db);
        let o = db
            .insert("Org", vec![Value::Str("O".into()), Value::Int(0)])
            .unwrap();
        let d = db
            .insert(
                "Dept",
                vec![Value::Str("D".into()), Value::Int(0), Value::Ref(o)],
            )
            .unwrap();
        db.insert(
            "Emp1",
            vec![Value::Str("E".into()), Value::Int(0), Value::Ref(d)],
        )
        .unwrap();
        let p = db
            .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
            .unwrap();
        db.update(d, &[("name", Value::Str("D2".into()))]).unwrap();
        assert_eq!(db.pending_count(p), 1);
        db.save().unwrap(); // must flush the deferred queue
    }
    let mut db =
        Database::open(Box::new(FileDisk::open(&dir).unwrap()), DbConfig::default()).unwrap();
    let e = db.scan_set("Emp1").unwrap()[0];
    let p = db.catalog().paths().next().unwrap().id;
    assert_eq!(
        db.path_values(e, p).unwrap(),
        Some(vec![Value::Str("D2".into())])
    );
    check_consistency(&mut db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn large_catalog_image_chunks() {
    // A catalog large enough to span multiple record chunks still
    // round-trips.
    let mut db = Database::in_memory(DbConfig::default());
    // Many wide types with long names.
    for t in 0..60 {
        let fields: Vec<(String, FieldType)> = (0..40)
            .map(|i| {
                (
                    format!("field_with_a_rather_long_name_{t}_{i}"),
                    FieldType::Int,
                )
            })
            .collect();
        db.define_type(TypeDef::new(format!("TYPE_{t:04}"), fields))
            .unwrap();
        db.create_set(&format!("Set_{t:04}"), &format!("TYPE_{t:04}"))
            .unwrap();
    }
    let image = persist::encode(db.catalog());
    assert!(
        image.len() > fieldrep_storage::MAX_RECORD_PAYLOAD,
        "image spans chunks ({} bytes)",
        image.len()
    );
    db.save().unwrap();
    // In-memory disks cannot be reopened across processes, but the chunked
    // write/readback path is the same; decode the image directly too.
    let back = persist::decode(&image).unwrap();
    assert_eq!(back.sets().len(), 60);
}
