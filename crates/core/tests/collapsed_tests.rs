//! §4.3.3 collapsed inverted paths: the Figure-6 scenario and its edge
//! cases, with full invariant checking.

mod common;

use common::check_consistency;
use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig, DbError};
use fieldrep_model::{Annotation, FieldType, TypeDef, Value};
use fieldrep_storage::Oid;

fn sval(s: &str) -> Value {
    Value::Str(s.into())
}

fn employee_db() -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db
}

struct World {
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
    emps: Vec<Oid>,
}

fn populate(db: &mut Database) -> World {
    let orgs: Vec<Oid> = (0..2)
        .map(|i| {
            db.insert("Org", vec![sval(&format!("org{i}")), Value::Int(i)])
                .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..4)
        .map(|i| {
            db.insert(
                "Dept",
                vec![sval(&format!("dept{i}")), Value::Ref(orgs[i % 2])],
            )
            .unwrap()
        })
        .collect();
    let emps: Vec<Oid> = (0..12)
        .map(|i| {
            db.insert(
                "Emp1",
                vec![sval(&format!("e{i}")), Value::Ref(depts[i % 4])],
            )
            .unwrap()
        })
        .collect();
    World { orgs, depts, emps }
}

#[test]
fn collapsed_basic_read_and_terminal_update() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("org0")])
    );
    assert_eq!(
        db.path_values(w.emps[1], p).unwrap(),
        Some(vec![sval("org1")])
    );

    // Terminal update: one link level to the sources.
    db.update(w.orgs[0], &[("name", sval("OrgZero"))]).unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps[0], &w.emps[2], &w.emps[4]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("OrgZero")]));
    }
    assert_eq!(
        db.path_values(w.emps[1], p).unwrap(),
        Some(vec![sval("org1")])
    );
}

#[test]
fn collapsed_figure_6_intermediate_move() {
    // "if D.org is set to some other object in Org, say X, then the OIDs
    // of E1, E2, and E3 will have to be moved from O's link object to X's
    // link object."
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    // dept0 (employees 0, 4, 8) moves from org0 to org1.
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps[0], &w.emps[4], &w.emps[8]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("org1")]));
    }
    // Other employees untouched.
    assert_eq!(
        db.path_values(w.emps[2], p).unwrap(),
        Some(vec![sval("org0")])
    );
}

#[test]
fn collapsed_single_link_level_io_advantage() {
    // The point of collapsing: a terminal update traverses ONE link
    // store. Compare I/O against the uncollapsed 2-level form.
    let build = |collapsed: bool| {
        let mut db = employee_db();
        let o = db.insert("Org", vec![sval("o#0"), Value::Int(0)]).unwrap();
        // 40 depts × 25 employees under one org.
        let depts: Vec<Oid> = (0..40)
            .map(|i| {
                db.insert("Dept", vec![sval(&format!("d{i}")), Value::Ref(o)])
                    .unwrap()
            })
            .collect();
        for i in 0..1000usize {
            db.insert(
                "Emp1",
                vec![sval(&format!("e{i}")), Value::Ref(depts[i % 40])],
            )
            .unwrap();
        }
        if collapsed {
            db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
                .unwrap();
        } else {
            db.replicate("Emp1.dept.org.name", Strategy::InPlace)
                .unwrap();
        }
        (db, o)
    };
    let mut io = Vec::new();
    for collapsed in [false, true] {
        let (db, o) = build(collapsed);
        db.flush_all().unwrap();
        db.reset_io();
        db.update(o, &[("name", sval("o#1"))]).unwrap();
        db.flush_all().unwrap();
        io.push(db.io_profile().total_io());
    }
    assert!(
        io[1] < io[0],
        "collapsed terminal propagation ({}) should beat uncollapsed ({})",
        io[1],
        io[0]
    );
}

#[test]
fn collapsed_source_retarget_and_delete() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    // Retarget an employee to another dept (different org).
    db.update(w.emps[0], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("org1")])
    );
    // Delete employees of dept3 until its marker disappears.
    db.delete(w.emps[3]).unwrap();
    db.delete(w.emps[7]).unwrap();
    db.delete(w.emps[11]).unwrap();
    check_consistency(&mut db);
    let d3 = db.get(w.depts[3]).unwrap();
    assert!(
        !d3.annotations
            .iter()
            .any(|a| matches!(a, Annotation::CollapsedVia { .. })),
        "dept3 no longer routes anyone: {:?}",
        d3.annotations
    );
}

#[test]
fn collapsed_broken_chain_parks_entries() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    // Break dept0's org: employees 0,4,8 lose their values, but the
    // routing is parked on dept0.
    db.update(w.depts[0], &[("org", Value::Ref(Oid::NULL))])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(w.emps[0], p).unwrap(), None);
    // Re-point dept0 at org1: the parked entries move and values return.
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    check_consistency(&mut db);
    for &e in [&w.emps[0], &w.emps[4], &w.emps[8]] {
        assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("org1")]));
    }
}

#[test]
fn collapsed_insert_after_replicate() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    let e = db
        .insert("Emp1", vec![sval("new"), Value::Ref(w.depts[2])])
        .unwrap();
    check_consistency(&mut db);
    assert_eq!(db.path_values(e, p).unwrap(), Some(vec![sval("org0")]));
}

#[test]
fn collapsed_deferred_propagation() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Deferred)
        .unwrap();
    db.update(w.orgs[0], &[("name", sval("Lazy"))]).unwrap();
    assert_eq!(db.pending_count(p), 1);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("Lazy")])
    );
    assert_eq!(db.pending_count(p), 0);
    // Intermediate move with deferred values.
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    assert!(db.pending_count(p) >= 1);
    db.sync_all_pending().unwrap();
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("org1")])
    );
}

#[test]
fn collapsed_inverse_function() {
    let mut db = employee_db();
    let w = populate(&mut db);
    db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    let link = db.catalog().links().next().unwrap().id;
    // Which employees roll up to org0? (depts 0 and 2 → e0,2,4,6,8,10)
    let mut hits = db.inverse(link, w.orgs[0]).unwrap();
    hits.sort_unstable();
    let mut want: Vec<Oid> = w.emps.iter().step_by(2).copied().collect();
    want.sort_unstable();
    assert_eq!(hits, want);
}

#[test]
fn collapsed_delete_guards() {
    let mut db = employee_db();
    let w = populate(&mut db);
    db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    // Terminal holds a store → guarded. Intermediate routes → guarded.
    assert!(matches!(
        db.delete(w.orgs[0]),
        Err(DbError::StillReferenced(_))
    ));
    assert!(matches!(
        db.delete(w.depts[0]),
        Err(DbError::StillReferenced(_))
    ));
}

#[test]
fn collapsed_drop_replication() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    db.drop_replication(p).unwrap();
    for set in ["Org", "Dept", "Emp1"] {
        for oid in db.scan_set(set).unwrap() {
            assert!(
                db.get(oid).unwrap().annotations.is_empty(),
                "{set} object {oid} keeps annotations"
            );
        }
    }
    assert_eq!(db.catalog().links().count(), 0);
    check_consistency(&mut db);
    let _ = w;
}

#[test]
fn collapsed_validation_rules() {
    let mut db = employee_db();
    populate(&mut db);
    // 1-level paths cannot collapse.
    assert!(db
        .replicate_collapsed("Emp1.dept.name", Propagation::Eager)
        .is_err());
    // Normal and collapsed paths over the same hops do not share links.
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    db.replicate_collapsed("Emp1.dept.org.budget", Propagation::Eager)
        .unwrap();
    check_consistency(&mut db);
    let collapsed_links = db.catalog().links().filter(|l| l.collapsed).count();
    let normal_links = db.catalog().links().filter(|l| !l.collapsed).count();
    assert_eq!(collapsed_links, 1);
    assert_eq!(normal_links, 2);
}

#[test]
fn collapsed_and_uncollapsed_agree() {
    // Same data, both representations: identical replicated values under
    // identical mutations.
    let run = |collapsed: bool| -> Vec<Option<Vec<Value>>> {
        let mut db = employee_db();
        let w = populate(&mut db);
        let p = if collapsed {
            db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
                .unwrap()
        } else {
            db.replicate("Emp1.dept.org.name", Strategy::InPlace)
                .unwrap()
        };
        db.update(w.orgs[1], &[("name", sval("X"))]).unwrap();
        db.update(w.depts[2], &[("org", Value::Ref(w.orgs[1]))])
            .unwrap();
        db.update(w.emps[5], &[("dept", Value::Ref(w.depts[2]))])
            .unwrap();
        db.delete(w.emps[6]).unwrap();
        check_consistency(&mut db);
        w.emps
            .iter()
            .filter(|e| **e != w.emps[6])
            .map(|e| db.path_values(*e, p).unwrap())
            .collect()
    };
    assert_eq!(run(false), run(true));
}
