//! Shared test support: a full-database consistency checker implementing
//! DESIGN.md invariants 1–3.
//!
//! The checker recomputes, from nothing but base objects and the schema,
//! what every replicated structure *should* contain, and compares that
//! against what the engine actually maintains:
//!
//! 1. every hidden replicated value (or `S'` replica read) equals the
//!    value reached by walking the forward path;
//! 2. every link object contains exactly the OIDs of the objects that
//!    currently lie on the path at that level;
//! 3. every replica anchor's refcount equals the number of source objects
//!    sharing it, and replica values match the terminal object.

use fieldrep_catalog::LinkId;
use fieldrep_core::{Database, LINK_TAG, REPLICA_TAG};
use fieldrep_model::{Annotation, Value};
use fieldrep_storage::{HeapFile, Oid};
use std::collections::{BTreeMap, BTreeSet};

/// Walk the forward chain for `oid` along the ref-field indexes `hops`.
/// Returns node OIDs (None from the first broken hop).
fn chain_of(db: &mut Database, oid: Oid, hops: &[usize]) -> Vec<Option<Oid>> {
    let mut chain = vec![Some(oid)];
    let mut cur = Some(oid);
    for &h in hops {
        cur = match cur {
            None => None,
            Some(c) => {
                let obj = db.get(c).unwrap();
                match &obj.values[h] {
                    Value::Ref(o) if !o.is_null() => Some(*o),
                    _ => None,
                }
            }
        };
        chain.push(cur);
    }
    chain
}

/// Check one §4.3.3 collapsed link: every complete-or-parked chain has
/// exactly one tagged entry at the right holder; `CollapsedVia` markers
/// exist exactly on routing intermediates; no orphan chunks.
fn check_collapsed_link(
    db: &mut Database,
    link: &fieldrep_catalog::LinkDef,
    set_names: &[(fieldrep_catalog::SetId, String)],
) {
    let src_set_name = set_names
        .iter()
        .find(|(id, _)| *id == link.set)
        .map(|(_, n)| n.clone())
        .unwrap();
    let mut expected: BTreeMap<Oid, BTreeSet<(Oid, Oid)>> = BTreeMap::new();
    let mut vias: BTreeSet<Oid> = BTreeSet::new();
    for src in db.scan_set(&src_set_name).unwrap() {
        let chain = chain_of(db, src, &link.prefix);
        if let Some(d) = chain[1] {
            let holder = chain[2].unwrap_or(d);
            expected.entry(holder).or_default().insert((src, d));
            vias.insert(d);
        }
    }
    // Intermediate type: target of the first hop.
    let src_type = db.catalog().set(link.set).elem_type;
    let mid_type = db.catalog().ref_target(src_type, link.prefix[0]).unwrap();
    let mut holder_types = vec![link.dst_type];
    if mid_type != link.dst_type {
        holder_types.push(mid_type);
    }
    let holder_sets: Vec<String> = holder_types
        .iter()
        .flat_map(|t| {
            db.catalog()
                .sets_of_type(*t)
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    let mut chunks_seen = 0u64;
    for hs in &holder_sets {
        for h in db.scan_set(hs).unwrap() {
            let obj = db.get(h).unwrap();
            let head = fieldrep_core::collapsed::find_store(&obj, link.id.0);
            match (head, expected.get(&h)) {
                (None, None) => {}
                (None, Some(w)) => panic!("holder {h} missing collapsed store ({w:?})"),
                (Some(_), None) => panic!("holder {h} has a stale collapsed store"),
                (Some(head), Some(w)) => {
                    // Walk the chunk chain manually to count chunks.
                    let hf = HeapFile::open(link.file);
                    let mut cur = Some(head);
                    let mut entries = Vec::new();
                    while let Some(c) = cur {
                        chunks_seen += 1;
                        let (tag, payload) = hf.read(db.sm(), c).unwrap();
                        assert_eq!(tag, LINK_TAG);
                        let (next, chunk) = fieldrep_core::collapsed::decode_chunk(&payload);
                        entries.extend(chunk);
                        cur = next;
                    }
                    assert!(
                        entries.windows(2).all(|x| x[0].0 < x[1].0),
                        "collapsed entries sorted by source on {h}"
                    );
                    let got: BTreeSet<(Oid, Oid)> = entries.into_iter().collect();
                    assert_eq!(&got, w, "collapsed entries for holder {h}");
                }
            }
        }
    }
    // Markers on intermediates.
    let mid_sets: Vec<String> = db
        .catalog()
        .sets_of_type(mid_type)
        .map(|s| s.name.clone())
        .collect();
    for ms in &mid_sets {
        for d in db.scan_set(ms).unwrap() {
            let obj = db.get(d).unwrap();
            let marked = fieldrep_core::collapsed::has_via_marker(&obj, link.id.0);
            assert_eq!(
                marked,
                vias.contains(&d),
                "CollapsedVia marker on {d} (expected iff it routes sources)"
            );
        }
    }
    // No orphan chunks in the link file.
    let live = HeapFile::open(link.file).count(db.sm()).unwrap();
    assert_eq!(live, chunks_seen, "collapsed link file has orphan chunks");
}

/// Assert all replication invariants hold for the whole database.
pub(crate) fn check_consistency(db: &mut Database) {
    let paths: Vec<_> = db.catalog().paths().cloned().collect();
    let set_names: Vec<(fieldrep_catalog::SetId, String)> = db
        .catalog()
        .sets()
        .iter()
        .map(|s| (s.id, s.name.clone()))
        .collect();

    // ---------------- invariant 1: replicated values --------------------
    for p in &paths {
        let set_name = set_names
            .iter()
            .find(|(id, _)| *id == p.set)
            .map(|(_, n)| n.clone())
            .unwrap();
        let dotted = p.expr.segments.join(".");
        for oid in db.scan_set(&set_name).unwrap() {
            let expected = db.deref_path(oid, &dotted).unwrap();
            let actual = db.path_values(oid, p.id).unwrap();
            assert_eq!(
                actual, expected,
                "replica mismatch for {oid} along {} ({:?})",
                p.expr, p.strategy
            );
        }
    }

    // ---------------- invariant 2: link objects -------------------------
    let links: Vec<_> = db.catalog().links().cloned().collect();
    for link in links.iter().filter(|l| l.collapsed) {
        check_collapsed_link(db, link, &set_names);
    }
    for link in links.iter().filter(|l| !l.collapsed) {
        let src_set_name = set_names
            .iter()
            .find(|(id, _)| *id == link.set)
            .map(|(_, n)| n.clone())
            .unwrap();
        // expected: target -> members, derived from forward references.
        let mut expected: BTreeMap<Oid, BTreeSet<Oid>> = BTreeMap::new();
        for src in db.scan_set(&src_set_name).unwrap() {
            let chain = chain_of(db, src, &link.prefix);
            let member = chain[link.prefix.len() - 1];
            let target = chain[link.prefix.len()];
            if let (Some(m), Some(t)) = (member, target) {
                expected.entry(t).or_default().insert(m);
            }
        }
        // actual: iterate every object of the link's dst type.
        let dst_sets: Vec<String> = db
            .catalog()
            .sets_of_type(link.dst_type)
            .map(|s| s.name.clone())
            .collect();
        let mut link_objects_seen = 0u64;
        for ds in dst_sets {
            for t in db.scan_set(&ds).unwrap() {
                let obj = db.get(t).unwrap();
                let ann = obj.annotations.iter().find(|a| {
                    matches!(a,
                        Annotation::LinkRef { link: l, .. } | Annotation::InlineLink { link: l, .. }
                            if *l == link.id.0)
                });
                let want = expected.get(&t);
                match (ann, want) {
                    (None, None) => {}
                    (None, Some(w)) => panic!(
                        "target {t} missing link annotation for {:?}, expected members {w:?}",
                        LinkId(link.id.0)
                    ),
                    (Some(a), None) => {
                        panic!("target {t} has stale link annotation {a:?} (no referents)")
                    }
                    (Some(Annotation::InlineLink { oids, .. }), Some(w)) => {
                        assert!(
                            oids.len() <= db.config().inline_link_threshold,
                            "inline link exceeds threshold on {t}"
                        );
                        let got: BTreeSet<Oid> = oids.iter().copied().collect();
                        assert_eq!(&got, w, "inline link members for {t}");
                        assert!(
                            oids.windows(2).all(|x| x[0] < x[1]),
                            "inline members sorted on {t}"
                        );
                    }
                    (Some(Annotation::LinkRef { oid, .. }), Some(w)) => {
                        // Count the chunks of this store and verify the
                        // chunk-chain invariants along the way.
                        let hf = HeapFile::open(link.file);
                        let mut cur = Some(*oid);
                        let mut members: Vec<Oid> = Vec::new();
                        while let Some(c) = cur {
                            link_objects_seen += 1;
                            let (tag, payload) = hf.read(db.sm(), c).unwrap();
                            assert_eq!(tag, LINK_TAG);
                            let (_, next, chunk) = fieldrep_core::links::decode_chunk(&payload);
                            assert!(
                                chunk.len() <= fieldrep_core::links::MAX_CHUNK_MEMBERS,
                                "chunk within capacity on {t}"
                            );
                            members.extend(chunk);
                            cur = next;
                        }
                        assert!(
                            db.config().inline_link_threshold == 0
                                || link.level != 0
                                || members.len() > db.config().inline_link_threshold,
                            "link store on {t} should have been inlined"
                        );
                        assert!(
                            members.windows(2).all(|x| x[0] < x[1]),
                            "link members globally sorted for {t}"
                        );
                        let got: BTreeSet<Oid> = members.into_iter().collect();
                        assert_eq!(&got, w, "link-store members for {t}");
                    }
                    _ => unreachable!(),
                }
            }
        }
        // No orphan chunks in the link file.
        let live = HeapFile::open(link.file).count(db.sm()).unwrap();
        assert_eq!(
            live, link_objects_seen,
            "link file {} has orphan link chunks",
            link.file
        );
    }

    // ---------------- invariant 3: replica anchors ----------------------
    let groups: Vec<_> = db.catalog().groups().cloned().collect();
    for g in &groups {
        let src_set_name = set_names
            .iter()
            .find(|(id, _)| *id == g.set)
            .map(|(_, n)| n.clone())
            .unwrap();
        // expected: terminal -> source count (complete chains only).
        let mut expected: BTreeMap<Oid, u32> = BTreeMap::new();
        let mut src_ref_targets: BTreeMap<Oid, Oid> = BTreeMap::new(); // src -> expected replica terminal
        for src in db.scan_set(&src_set_name).unwrap() {
            let chain = chain_of(db, src, &g.hops);
            if let Some(t) = chain.last().copied().flatten() {
                *expected.entry(t).or_default() += 1;
                src_ref_targets.insert(src, t);
            }
        }
        let dst_sets: Vec<String> = db
            .catalog()
            .sets_of_type(g.terminal_type)
            .map(|s| s.name.clone())
            .collect();
        let mut anchors_seen = 0u64;
        let mut replica_of_terminal: BTreeMap<Oid, Oid> = BTreeMap::new();
        for ds in dst_sets {
            for t in db.scan_set(&ds).unwrap() {
                let obj = db.get(t).unwrap();
                let anchor = obj.annotations.iter().find_map(|a| match a {
                    Annotation::ReplicaAnchor {
                        group,
                        oid,
                        refcount,
                    } if *group == g.id.0 => Some((*oid, *refcount)),
                    _ => None,
                });
                match (anchor, expected.get(&t)) {
                    (None, None) => {}
                    (None, Some(n)) => panic!("terminal {t} missing anchor ({n} sources)"),
                    (Some((roid, _)), None) => {
                        panic!("terminal {t} has stale anchor to {roid}")
                    }
                    (Some((roid, rc)), Some(n)) => {
                        anchors_seen += 1;
                        assert_eq!(rc, *n, "refcount for terminal {t}");
                        replica_of_terminal.insert(t, roid);
                        // Replica values equal the terminal's fields.
                        let hf = HeapFile::open(g.file);
                        let (tag, payload) = hf.read(db.sm(), roid).unwrap();
                        assert_eq!(tag, REPLICA_TAG);
                        let vals = Value::decode_list(&payload).unwrap();
                        let want: Vec<Value> =
                            g.fields.iter().map(|&i| obj.values[i].clone()).collect();
                        assert_eq!(vals, want, "replica values for terminal {t}");
                    }
                }
            }
        }
        // Every source's ReplicaRef points at its terminal's replica.
        for (src, t) in &src_ref_targets {
            let obj = db.get(*src).unwrap();
            let rref = obj.annotations.iter().find_map(|a| match a {
                Annotation::ReplicaRef { group, oid } if *group == g.id.0 => Some(*oid),
                _ => None,
            });
            assert_eq!(
                rref,
                replica_of_terminal.get(t).copied(),
                "replica ref of source {src}"
            );
        }
        // No orphan replica objects.
        let live = HeapFile::open(g.file).count(db.sm()).unwrap();
        assert_eq!(live, anchors_seen, "orphan replica objects in group file");
    }
}
