//! Acceptance for the per-path workload registry: after a mixed
//! read/update workload, the observed update probability `P_up` must be
//! within 10% of the driven mix, and the EWMAs must reflect real
//! propagation fan-out.

use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};

#[test]
fn observed_p_up_is_within_ten_percent_of_the_driven_mix() {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("DEPT", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![("dept", FieldType::Ref("DEPT".into()))],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp", "EMP").unwrap();
    let d = db.insert("Dept", vec![Value::Str("Shoe".into())]).unwrap();
    let emps: Vec<_> = (0..4)
        .map(|_| db.insert("Emp", vec![Value::Ref(d)]).unwrap())
        .collect();
    let path = db.replicate("Emp.dept.name", Strategy::InPlace).unwrap();

    // Drive a 30-read / 10-update mix on the path.
    for i in 0..10 {
        db.update(d, &[("name", Value::Str(format!("name-{i}")))])
            .unwrap();
    }
    for k in 0..30 {
        let vals = db.path_values(emps[k % emps.len()], path).unwrap();
        assert_eq!(
            vals,
            Some(vec![Value::Str("name-9".into())]),
            "replica must serve the latest propagated value"
        );
    }

    let w = db
        .workload()
        .get("Emp.dept.name")
        .expect("the driven path has observed statistics");
    assert_eq!((w.reads, w.updates), (30, 10), "every access was counted");
    let driven = 10.0 / 40.0;
    let observed = w.p_up();
    assert!(
        ((observed - driven) / driven).abs() <= 0.10,
        "observed P_up {observed} not within 10% of driven {driven}"
    );
    // Each ripple fans out to the 4 sharing EMP objects.
    assert!(
        (w.fanout_ewma - 4.0).abs() < 1e-9,
        "fan-out EWMA {} should settle at 4",
        w.fanout_ewma
    );
    assert!(w.update_pages_ewma > 0.0, "propagation ripples touch pages");
}
