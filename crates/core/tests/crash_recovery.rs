//! Kill-and-recover acceptance test for the WAL (ISSUE 9).
//!
//! A seeded multi-path update workload runs over a file-backed database
//! with all three replication strategies live (in-place, separate,
//! collapsed). The buffer pool is sized so **no page is ever written
//! back during the workload** — the WAL is the only durable trace of
//! the updates. The process is then "killed" at ≥100 seeded WAL byte
//! offsets: for each offset we reconstruct the exact crash state (the
//! checkpointed data files plus a prefix of the log), reopen with
//! [`Database::open_with_wal`], and require that
//!
//! * recovery replays exactly the committed prefix (every recovered
//!   field value is one the workload actually wrote, or the initial
//!   value),
//! * every replica equals its source field (the structural checker
//!   walks all three strategies), and
//! * the torn tail is discarded cleanly, never an error.

mod common;

use common::check_consistency;
use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::{FileDisk, FileWalStore, Oid};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};

const SEED: u64 = 0xC0FFEE;
const UPDATES: usize = 150;
const KILL_POINTS: usize = 100;

fn cfg() -> DbConfig {
    DbConfig {
        // Large enough that the workload never evicts: the data files
        // stay at their checkpoint image and the WAL alone carries the
        // updates (asserted below).
        pool_pages: 512,
        inline_link_threshold: 4,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fieldrep-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_db(dir: &Path) -> Database {
    Database::open_with_wal(
        Box::new(FileDisk::open(dir).unwrap()),
        Box::new(FileWalStore::open(dir).unwrap()),
        cfg(),
    )
    .unwrap()
}

struct World {
    db: Database,
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
}

/// Figure-1 schema with one replicated path per strategy, persisted to
/// `dir` and checkpointed (so the data files are a durable baseline and
/// the log is empty apart from the checkpoint marker).
fn build_world(dir: &Path) -> World {
    let mut db = Database::with_disk_and_wal(
        Box::new(FileDisk::open(dir).unwrap()),
        Box::new(FileWalStore::open(dir).unwrap()),
        cfg(),
    )
    .unwrap();
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let orgs: Vec<Oid> = (0..4)
        .map(|i| {
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(1000 + i)],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..8)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Int(100 * i),
                    Value::Ref(orgs[(i as usize) % orgs.len()]),
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..64 {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp{i}")),
                Value::Int(i),
                Value::Ref(depts[(i as usize) % depts.len()]),
            ],
        )
        .unwrap();
    }

    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    db.save().unwrap();
    World { db, orgs, depts }
}

/// Copy every `f*.pages` baseline file into `scratch` and install the
/// first `cut` bytes of the captured WAL as its log — the exact disk
/// state a crash at that log offset leaves behind.
fn stage_crash(baseline: &Path, wal: &[u8], cut: usize, scratch: &Path) {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).unwrap();
    for entry in std::fs::read_dir(baseline).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".pages") {
            std::fs::copy(entry.path(), scratch.join(name)).unwrap();
        }
    }
    std::fs::write(scratch.join("wal.log"), &wal[..cut]).unwrap();
}

#[test]
fn kill_at_100_seeded_wal_offsets_recovers_consistently() {
    let live = temp_dir("live");
    let baseline = temp_dir("baseline");
    let w = build_world(&live);

    // Snapshot the checkpointed data files: with zero evictions during
    // the workload these ARE the on-disk pages at every kill point.
    for entry in std::fs::read_dir(&live).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".pages") {
            std::fs::copy(entry.path(), baseline.join(name)).unwrap();
        }
    }

    // Seeded multi-path workload: updates only, across all three
    // strategies. Track every value written per object so recovered
    // states can be validated as "some committed prefix".
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut dept_names: Vec<Vec<String>> = vec![Vec::new(); w.depts.len()];
    let mut dept_budgets: Vec<Vec<i64>> = vec![Vec::new(); w.depts.len()];
    let mut org_names: Vec<Vec<String>> = vec![Vec::new(); w.orgs.len()];
    w.db.reset_profile();
    for step in 0..UPDATES {
        match rng.gen_range(0..3u32) {
            0 => {
                let i = rng.gen_range(0..w.depts.len());
                let v = format!("d{i}-n{step}");
                w.db.update_txn(w.depts[i], &[("name", Value::Str(v.clone()))])
                    .unwrap();
                dept_names[i].push(v);
            }
            1 => {
                let i = rng.gen_range(0..w.depts.len());
                let v = rng.gen_range(0..1_000_000i64);
                w.db.update_txn(w.depts[i], &[("budget", Value::Int(v))])
                    .unwrap();
                dept_budgets[i].push(v);
            }
            _ => {
                let i = rng.gen_range(0..w.orgs.len());
                let v = format!("o{i}-n{step}");
                w.db.update_txn(w.orgs[i], &[("name", Value::Str(v.clone()))])
                    .unwrap();
                org_names[i].push(v);
            }
        }
    }
    let prof = w.db.io_profile();
    assert_eq!(
        prof.evictions, 0,
        "workload must fit in the pool: the WAL must be the only durable trace"
    );
    let stats = w.db.sm().wal_stats();
    assert_eq!(stats.last_lsn, stats.durable_lsn, "every commit fsynced");
    assert!(
        stats.appends as usize >= UPDATES * 3,
        "Begin+image+Commit each"
    );

    let wal = std::fs::read(live.join("wal.log")).unwrap();
    assert!(wal.len() > PAGE_PROBE, "workload produced a real log");
    let orgs = w.orgs.clone();
    let depts = w.depts.clone();
    drop(w); // the "kill": no save, no flush

    // ≥100 seeded kill offsets, plus the two edges.
    let mut cuts: Vec<usize> = (0..KILL_POINTS - 2)
        .map(|_| rng.gen_range(0..wal.len() + 1))
        .collect();
    cuts.push(0);
    cuts.push(wal.len());

    let scratch = temp_dir("scratch");
    for (k, cut) in cuts.iter().enumerate() {
        stage_crash(&baseline, &wal, *cut, &scratch);
        let mut db = open_db(&scratch);
        let r = db.sm().recovery_report();
        // The torn tail is at most one partial frame (a page-image
        // frame is 8 bytes of framing + 4119 of payload).
        assert!(
            r.truncated_bytes < 4200,
            "kill point {k}: torn tail {} is larger than one frame",
            r.truncated_bytes
        );

        // Every recovered field is the initial value or one the
        // workload committed — nothing invented, nothing torn.
        for (i, d) in depts.iter().enumerate() {
            let name = db.get_field(*d, "name").unwrap();
            let Value::Str(name) = name else {
                panic!("dept name is a string")
            };
            assert!(
                name == format!("dept{i}") || dept_names[i].contains(&name),
                "kill point {k} (cut {cut}): dept{i} name {name:?} was never written"
            );
            let Value::Int(budget) = db.get_field(*d, "budget").unwrap() else {
                panic!("dept budget is an int")
            };
            assert!(
                budget == 100 * i as i64 || dept_budgets[i].contains(&budget),
                "kill point {k}: dept{i} budget {budget} was never written"
            );
        }
        for (i, o) in orgs.iter().enumerate() {
            let Value::Str(name) = db.get_field(*o, "name").unwrap() else {
                panic!("org name is a string")
            };
            assert!(
                name == format!("org{i}") || org_names[i].contains(&name),
                "kill point {k}: org{i} name {name:?} was never written"
            );
        }

        // The paper's invariant, structurally: every replica equals its
        // source field across all three strategies.
        check_consistency(&mut db);
    }

    let _ = std::fs::remove_dir_all(&live);
    let _ = std::fs::remove_dir_all(&baseline);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// `wal.len()` is compared against this to make sure the workload
/// actually logged page images (a page image frame alone is >4 KiB).
const PAGE_PROBE: usize = 4096;

#[test]
fn clean_save_then_reopen_replays_nothing() {
    let dir = temp_dir("clean");
    let (depts0, budget0);
    {
        let w = build_world(&dir);
        depts0 = w.depts.clone();
        let Value::Int(b) = w.db.get_field(depts0[3], "budget").unwrap() else {
            panic!()
        };
        budget0 = b;
        // `build_world` ends in save(): checkpointed, log truncated.
    }
    let mut db = open_db(&dir);
    let r = db.sm().recovery_report();
    assert_eq!(r.replayed_pages, 0, "clean shutdown leaves nothing to redo");
    assert_eq!(r.committed_txns, 0);
    let Value::Int(b) = db.get_field(depts0[3], "budget").unwrap() else {
        panic!()
    };
    assert_eq!(b, budget0);
    check_consistency(&mut db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fast deterministic smoke for `scripts/check.sh`: one committed
/// update, kill with the full log, reopen, verify the replica ripple
/// survived.
#[test]
fn smoke_single_commit_survives_a_kill() {
    let dir = temp_dir("smoke");
    let w = build_world(&dir);
    let db = w.db;
    db.update_txn(w.depts[0], &[("name", Value::Str("rebuilt".into()))])
        .unwrap();
    drop(db); // kill: never saved after the update
    let mut db = open_db(&dir);
    assert!(
        db.sm().recovery_report().replayed_pages > 0,
        "the commit was replayed from the log"
    );
    assert_eq!(
        db.get_field(w.depts[0], "name").unwrap(),
        Value::Str("rebuilt".into())
    );
    check_consistency(&mut db);
    let _ = std::fs::remove_dir_all(&dir);
}
