//! Tests for the §8 future-work extensions: deferred propagation,
//! inverse functions over inverted paths, and replication deallocation
//! with link-ID reuse.

mod common;

use common::check_consistency;
use fieldrep_catalog::{IndexKind, LinkId, Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{Annotation, FieldType, TypeDef, Value};
use fieldrep_storage::Oid;

fn sval(s: &str) -> Value {
    Value::Str(s.into())
}

fn employee_db() -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db
}

struct World {
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
    emps: Vec<Oid>,
}

fn populate(db: &mut Database) -> World {
    let orgs: Vec<Oid> = (0..2)
        .map(|i| {
            db.insert("Org", vec![sval(&format!("org{i}")), Value::Int(i)])
                .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..4)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    sval(&format!("dept{i}")),
                    Value::Int(10 * i),
                    Value::Ref(orgs[(i % 2) as usize]),
                ],
            )
            .unwrap()
        })
        .collect();
    let emps: Vec<Oid> = (0..12)
        .map(|i| {
            db.insert(
                "Emp1",
                vec![
                    sval(&format!("emp{i}")),
                    Value::Int(100 * i),
                    Value::Ref(depts[(i % 4) as usize]),
                ],
            )
            .unwrap()
        })
        .collect();
    World { orgs, depts, emps }
}

// ------------------------------------------------------------- deferred

#[test]
fn deferred_inplace_defers_then_syncs() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();
    // Initial build is eager: values are present.
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("dept0")])
    );

    // Update: NOT propagated yet; the raw hidden field still holds the
    // old value, and one work item is pending.
    db.update(w.depts[0], &[("name", sval("renamed"))]).unwrap();
    assert_eq!(db.pending_count(p), 1);
    let raw = db.get(w.emps[0]).unwrap();
    assert_eq!(raw.replica_values(p.0).unwrap(), &[sval("dept0")]);

    // Reading through the API syncs first.
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("renamed")])
    );
    assert_eq!(db.pending_count(p), 0);
    check_consistency(&mut db);
}

#[test]
fn deferred_updates_batch() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();
    // Five updates to the same department collapse to one pending item.
    for i in 0..5 {
        db.update(w.depts[0], &[("name", sval(&format!("v{i}")))])
            .unwrap();
    }
    assert_eq!(db.pending_count(p), 1);
    // Two more to another department: two items total.
    db.update(w.depts[1], &[("name", sval("x"))]).unwrap();
    db.update(w.depts[1], &[("name", sval("y"))]).unwrap();
    assert_eq!(db.pending_count(p), 2);
    assert_eq!(db.sync_path(p).unwrap(), 2);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("v4")])
    );
    assert_eq!(db.path_values(w.emps[1], p).unwrap(), Some(vec![sval("y")]));
    check_consistency(&mut db);
}

#[test]
fn deferred_separate_replica_refresh() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_with(
            "Emp1.dept.budget",
            Strategy::Separate,
            Propagation::Deferred,
        )
        .unwrap();
    db.update(w.depts[0], &[("budget", Value::Int(777))])
        .unwrap();
    assert_eq!(db.pending_count(p), 1);
    // path_values syncs.
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![Value::Int(777)])
    );
    assert_eq!(db.pending_count(p), 0);
    check_consistency(&mut db);
}

#[test]
fn deferred_2level_intermediate_update() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_with(
            "Emp1.dept.org.name",
            Strategy::InPlace,
            Propagation::Deferred,
        )
        .unwrap();
    // Intermediate re-target: link structure moves eagerly, values lazily.
    db.update(w.depts[0], &[("org", Value::Ref(w.orgs[1]))])
        .unwrap();
    assert!(db.pending_count(p) >= 1);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("org1")])
    );
    check_consistency(&mut db);

    // Terminal rename also defers.
    db.update(w.orgs[1], &[("name", sval("OrgOne"))]).unwrap();
    assert_eq!(db.pending_count(p), 1);
    assert_eq!(
        db.path_values(w.emps[0], p).unwrap(),
        Some(vec![sval("OrgOne")])
    );
    check_consistency(&mut db);
}

#[test]
fn deferred_query_execution_syncs_automatically() {
    use fieldrep_query::ReadQuery;
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();
    db.update(w.depts[2], &[("name", sval("fresh"))]).unwrap();
    assert_eq!(db.pending_count(p), 1);
    let res = ReadQuery::on("Emp1")
        .project(["dept.name"])
        .run(&mut db)
        .unwrap();
    assert_eq!(db.pending_count(p), 0, "query synced the path");
    assert_eq!(res.rows[2][0], Some(sval("fresh")));
}

#[test]
fn deferred_update_is_cheap_sync_pays_later() {
    // The point of deferral: the update query no longer pays the fan-out.
    let mut eager = employee_db();
    let mut deferred = employee_db();
    // One dept, many employees.
    for db in [&mut eager, &mut deferred] {
        let o = db.insert("Org", vec![sval("o"), Value::Int(0)]).unwrap();
        let d = db
            .insert("Dept", vec![sval("d#0"), Value::Int(0), Value::Ref(o)])
            .unwrap();
        for i in 0..500 {
            db.insert(
                "Emp1",
                vec![sval(&format!("e{i}")), Value::Int(i), Value::Ref(d)],
            )
            .unwrap();
        }
    }
    eager
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Eager)
        .unwrap();
    deferred
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();

    let d_eager = eager.scan_set("Dept").unwrap()[0];
    let d_def = deferred.scan_set("Dept").unwrap()[0];

    eager.flush_all().unwrap();
    eager.reset_io();
    eager.update(d_eager, &[("name", sval("d#1"))]).unwrap();
    eager.flush_all().unwrap();
    let io_eager = eager.io_profile().total_io();

    deferred.flush_all().unwrap();
    deferred.reset_io();
    deferred.update(d_def, &[("name", sval("d#1"))]).unwrap();
    deferred.flush_all().unwrap();
    let io_deferred = deferred.io_profile().total_io();

    assert!(
        io_deferred * 3 < io_eager,
        "deferred update ({io_deferred}) should be far cheaper than eager ({io_eager})"
    );
    // And sync brings everything back in line.
    deferred.sync_all_pending().unwrap();
    check_consistency(&mut deferred);
}

#[test]
fn deferred_entries_purged_on_delete() {
    let mut db = employee_db();
    let o = db.insert("Org", vec![sval("o"), Value::Int(0)]).unwrap();
    let d = db
        .insert("Dept", vec![sval("d"), Value::Int(0), Value::Ref(o)])
        .unwrap();
    let e = db
        .insert("Emp1", vec![sval("e"), Value::Int(0), Value::Ref(d)])
        .unwrap();
    let p = db
        .replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();
    db.update(d, &[("name", sval("z"))]).unwrap();
    assert_eq!(db.pending_count(p), 1);
    // Remove the employee, then the dept: pending entry must not dangle.
    db.delete(e).unwrap();
    db.delete(d).unwrap();
    assert_eq!(db.pending_count(p), 0);
    assert_eq!(db.sync_path(p).unwrap(), 0);
}

#[test]
fn path_index_on_deferred_path_rejected() {
    let mut db = employee_db();
    populate(&mut db);
    db.replicate_with("Emp1.dept.name", Strategy::InPlace, Propagation::Deferred)
        .unwrap();
    assert!(db
        .create_index("Emp1.dept.name", IndexKind::Unclustered)
        .is_err());
}

// -------------------------------------------------------------- inverse

#[test]
fn inverse_function_via_inverted_path() {
    let mut db = employee_db();
    let w = populate(&mut db);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    // Who references dept0? Employees 0, 4, 8.
    let mut hits = db.inverse_of("Emp1.dept", w.depts[0]).unwrap();
    hits.sort_unstable();
    let mut want = vec![w.emps[0], w.emps[4], w.emps[8]];
    want.sort_unstable();
    assert_eq!(hits, want);
    // An unreferenced dept answers empty after everyone moves away.
    db.update(w.emps[0], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    db.update(w.emps[4], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    db.update(w.emps[8], &[("dept", Value::Ref(w.depts[1]))])
        .unwrap();
    assert!(db.inverse_of("Emp1.dept", w.depts[0]).unwrap().is_empty());
}

#[test]
fn inverse_on_second_level_link() {
    let mut db = employee_db();
    let w = populate(&mut db);
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    // Link 2 inverts dept.org: which depts (on the path) reference org0?
    let mut hits = db.inverse(LinkId(2), w.orgs[0]).unwrap();
    hits.sort_unstable();
    let mut want = vec![w.depts[0], w.depts[2]];
    want.sort_unstable();
    assert_eq!(hits, want);
}

#[test]
fn inverse_without_inverted_path_errors() {
    let mut db = employee_db();
    let w = populate(&mut db);
    assert!(db.inverse_of("Emp1.dept", w.depts[0]).is_err());
}

// ----------------------------------------------------------------- drop

#[test]
fn drop_replication_removes_all_state() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.drop_replication(p).unwrap();

    // No annotations anywhere.
    for oid in db.scan_set("Emp1").unwrap() {
        assert!(db.get(oid).unwrap().annotations.is_empty());
    }
    for oid in db.scan_set("Dept").unwrap() {
        assert!(db.get(oid).unwrap().annotations.is_empty());
    }
    assert_eq!(db.catalog().paths().count(), 0);
    assert_eq!(db.catalog().links().count(), 0);
    // Depts are now deletable (no replication guards them).
    db.delete(w.emps[0]).unwrap();
    check_consistency(&mut db);
}

#[test]
fn drop_preserves_shared_links() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p_name = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let p_budget = db.replicate("Emp1.dept.budget", Strategy::InPlace).unwrap();
    db.drop_replication(p_name).unwrap();
    // The shared link survives for the budget path.
    assert_eq!(db.catalog().links().count(), 1);
    check_consistency(&mut db);
    assert_eq!(
        db.path_values(w.emps[0], p_budget).unwrap(),
        Some(vec![Value::Int(0)])
    );
    // Budget updates still propagate.
    db.update(w.depts[0], &[("budget", Value::Int(5))]).unwrap();
    assert_eq!(
        db.path_values(w.emps[0], p_budget).unwrap(),
        Some(vec![Value::Int(5)])
    );
    check_consistency(&mut db);
}

#[test]
fn drop_separate_group_tears_down_replicas() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p1 = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    let p2 = db
        .replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    // Dropping one path keeps the shared group alive.
    db.drop_replication(p1).unwrap();
    assert_eq!(db.catalog().groups().count(), 1);
    check_consistency(&mut db);
    assert!(db.path_values(w.emps[0], p2).unwrap().is_some());
    // Dropping the last path removes the group, anchors and refs.
    db.drop_replication(p2).unwrap();
    assert_eq!(db.catalog().groups().count(), 0);
    for oid in db.scan_set("Emp1").unwrap() {
        assert!(db.get(oid).unwrap().annotations.is_empty());
    }
    for oid in db.scan_set("Dept").unwrap() {
        assert!(db.get(oid).unwrap().annotations.is_empty());
    }
}

#[test]
fn link_ids_are_reused_after_drop() {
    // §4.2: "link IDs which are not in use can be reused".
    let mut db = employee_db();
    populate(&mut db);
    let p1 = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let first_link = db.catalog().path(p1).links[0];
    db.drop_replication(p1).unwrap();
    let p2 = db.replicate("Emp1.dept.budget", Strategy::InPlace).unwrap();
    assert_eq!(
        db.catalog().path(p2).links[0],
        first_link,
        "freed link id is reused"
    );
    check_consistency(&mut db);
}

#[test]
fn drop_with_path_index_refused_until_index_dropped() {
    let mut db = employee_db();
    populate(&mut db);
    let p = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.create_index("Emp1.dept.name", IndexKind::Unclustered)
        .unwrap();
    assert!(db.drop_replication(p).is_err());
    // The path is still live and functional after the refused drop.
    assert_eq!(db.catalog().paths().count(), 1);
    check_consistency(&mut db);
}

#[test]
fn redeclare_after_drop_works() {
    let mut db = employee_db();
    let w = populate(&mut db);
    let p1 = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.drop_replication(p1).unwrap();
    let p2 = db.replicate("Emp1.dept.name", Strategy::Separate).unwrap();
    assert_eq!(
        db.path_values(w.emps[0], p2).unwrap(),
        Some(vec![sval("dept0")])
    );
    check_consistency(&mut db);
    // Annotations from the old strategy are gone; only the new group ref
    // remains on sources.
    let e = db.get(w.emps[0]).unwrap();
    assert_eq!(e.annotations.len(), 1);
    assert!(matches!(e.annotations[0], Annotation::ReplicaRef { .. }));
}
