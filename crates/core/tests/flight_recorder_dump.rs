//! End-to-end acceptance for the always-on flight recorder: an engine
//! error injected in the middle of an in-place propagation ripple must
//! hand the installed error sink a JSONL dump whose final events show
//! the failing ripple — the propagation spans (with the batch's page-I/O
//! deltas) followed by the error itself.
//!
//! Kept as a single-test file: the recorder ring and error sink are
//! process-wide, so this test owns its process.

use fieldrep_catalog::Strategy;
use fieldrep_core::{propagate, Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_obs::recorder;
use std::sync::{Arc, Mutex};

const ZERO_IO: &str = "\"io\":{\"disk_reads\":0,\"disk_writes\":0,\"disk_allocs\":0,\
                       \"pool_hits\":0,\"pool_misses\":0,\"evictions\":0}";

#[test]
fn injected_propagation_failure_dumps_the_failing_ripple() {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("DEPT", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![("dept", FieldType::Ref("DEPT".into()))],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp", "EMP").unwrap();
    let d = db.insert("Dept", vec![Value::Str("Shoe".into())]).unwrap();
    for _ in 0..8 {
        db.insert("Emp", vec![Value::Ref(d)]).unwrap();
    }
    db.replicate("Emp.dept.name", Strategy::InPlace).unwrap();

    // Capture the dump the engine hands the sink on error.
    let captured: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&captured);
    recorder::set_error_sink(move |lines| {
        *sink.lock().unwrap() = lines.to_vec();
    });

    propagate::fail_next_inplace_propagation();
    let err = db.update(d, &[("name", Value::Str("Retail".into()))]);
    recorder::clear_error_sink();
    assert!(err.is_err(), "injected failpoint must surface as an error");

    let dump = captured.lock().unwrap().clone();
    assert!(!dump.is_empty(), "error sink never received a dump");
    assert!(
        dump[0].contains("\"type\":\"recorder_dump\""),
        "dump starts with its header: {}",
        dump[0]
    );

    // The final event is the error, recorded against the propagation
    // span, carrying the failpoint's message.
    let last = dump.last().unwrap();
    assert!(
        last.contains("\"event\":\"error\"")
            && last.contains("\"name\":\"core.propagate\"")
            && last.contains("failpoint"),
        "dump must end with the propagation error: {last}"
    );

    // Immediately before it: the span exits of the failing ripple. The
    // in-place span's exit carries the batch's page-I/O delta (the
    // failpoint fires after the source batch was collected).
    // rposition: the *last* occurrences are the failing ripple's (earlier
    // propagation activity, e.g. replica builds, may also be retained).
    let pos = |pred: &dyn Fn(&str) -> bool| dump.iter().rposition(|l| pred(l));
    let inplace_exit = pos(&|l: &str| {
        l.contains("\"event\":\"span_exit\"") && l.contains("\"name\":\"core.propagate.inplace\"")
    })
    .expect("dump contains the in-place propagation span exit");
    let propagate_exit = pos(&|l: &str| {
        l.contains("\"event\":\"span_exit\"") && l.contains("\"name\":\"core.propagate\"")
    })
    .expect("dump contains the propagation round span exit");
    let error_at = dump.len() - 1;
    assert!(
        inplace_exit < propagate_exit && propagate_exit < error_at,
        "ripple spans must close before the error: inplace={inplace_exit} \
         propagate={propagate_exit} error={error_at}"
    );
    assert!(
        !dump[inplace_exit].contains(ZERO_IO),
        "the failing batch's span exit must carry its page-I/O delta: {}",
        dump[inplace_exit]
    );
}
