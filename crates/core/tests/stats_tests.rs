//! Tests for the statistics collector and the advisor bridge.

use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_costmodel::{IndexSetting, ModelStrategy};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::Oid;

fn build(f: usize, n_depts: usize) -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "DEPT",
        vec![("name", FieldType::Str), ("pad", FieldType::Pad(150))],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(75)),
        ],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let depts: Vec<Oid> = (0..n_depts)
        .map(|i| {
            db.insert("Dept", vec![Value::Str(format!("d{i:016}")), Value::Unit])
                .unwrap()
        })
        .collect();
    for i in 0..(f * n_depts) {
        db.insert(
            "Emp1",
            vec![
                Value::Int(i as i64),
                Value::Ref(depts[i % n_depts]),
                Value::Unit,
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn analyze_measures_sharing_and_sizes() {
    let mut db = build(8, 25);
    let s = db.analyze_path("Emp1.dept.name").unwrap();
    assert_eq!(s.source_count, 200);
    assert_eq!(s.terminal_count, 25);
    assert_eq!(s.complete_chains, 200);
    assert!((s.sharing - 8.0).abs() < 1e-9);
    // EMP base = 8 (int) + 8 (ref) + 75 (pad) + 1 = 92 bytes.
    assert!((s.source_bytes - 92.0).abs() < 1e-9, "{}", s.source_bytes);
    // DEPT base = 2+17 (str "d" + 16 digits) + 150 + 1 = 170.
    assert!(
        (s.terminal_bytes - 170.0).abs() < 1e-9,
        "{}",
        s.terminal_bytes
    );
    // Replicated value: encode_list of one 17-char string = 1+1+2+17 = 21.
    assert!(
        (s.replicated_bytes - 21.0).abs() < 1e-9,
        "{}",
        s.replicated_bytes
    );
}

#[test]
fn analyze_counts_only_referenced_terminals() {
    let mut db = build(4, 10);
    // Add 5 unreferenced departments: must not change the stats.
    for i in 0..5 {
        db.insert("Dept", vec![Value::Str(format!("unused{i}")), Value::Unit])
            .unwrap();
    }
    let s = db.analyze_path("Emp1.dept.name").unwrap();
    assert_eq!(s.terminal_count, 10);
    assert!((s.sharing - 4.0).abs() < 1e-9);
}

#[test]
fn analyze_handles_broken_chains() {
    let mut db = build(2, 5);
    for _ in 0..4 {
        db.insert(
            "Emp1",
            vec![Value::Int(0), Value::Ref(Oid::NULL), Value::Unit],
        )
        .unwrap();
    }
    let s = db.analyze_path("Emp1.dept.name").unwrap();
    assert_eq!(s.source_count, 14);
    assert_eq!(s.complete_chains, 10);
    assert_eq!(s.terminal_count, 5);
}

#[test]
fn analyze_ignores_replication_annotations_in_sizes() {
    let mut db = build(4, 10);
    let before = db.analyze_path("Emp1.dept.name").unwrap();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let after = db.analyze_path("Emp1.dept.name").unwrap();
    assert_eq!(before, after, "base sizes exclude hidden replica state");
}

#[test]
fn advise_matches_paper_judgement() {
    let mut db = build(10, 50);
    // Read-heavy: in-place.
    let (_, rec) = db
        .advise_path(
            "Emp1.dept.name",
            IndexSetting::Unclustered,
            0.01,
            0.01,
            0.02,
        )
        .unwrap();
    assert_eq!(rec.strategy, ModelStrategy::InPlace);
    // Update-heavy with sharing: never in-place (fan-out propagation
    // dominates); whether separate still beats no replication depends on
    // the (small) scale.
    let (_, rec) = db
        .advise_path("Emp1.dept.name", IndexSetting::Unclustered, 0.01, 0.01, 0.6)
        .unwrap();
    assert_ne!(rec.strategy, ModelStrategy::InPlace);
}

#[test]
fn analyze_two_level_path() {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("ORG", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![("org", FieldType::Ref("ORG".into()))],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![("dept", FieldType::Ref("DEPT".into()))],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let o = db.insert("Org", vec![Value::Str("o".into())]).unwrap();
    let d1 = db.insert("Dept", vec![Value::Ref(o)]).unwrap();
    let d2 = db.insert("Dept", vec![Value::Ref(o)]).unwrap();
    for d in [d1, d2, d1, d2, d1] {
        db.insert("Emp1", vec![Value::Ref(d)]).unwrap();
    }
    let s = db.analyze_path("Emp1.dept.org.name").unwrap();
    // All 5 employees reach the one org: f = 5.
    assert_eq!(s.terminal_count, 1);
    assert!((s.sharing - 5.0).abs() < 1e-9);
}

#[test]
fn analyze_rejects_hopless_path() {
    let mut db = build(1, 1);
    assert!(db.analyze_path("Emp1.salary").is_err());
}
