//! The WAL apply section must cover *every* engine write path, not just
//! `update_txn` (review follow-up to ISSUE 9): while one thread holds
//! it, a concurrent `insert` must block rather than interleave its page
//! images into the holder's commit record. And when commit logging
//! fails after a successful apply, the caller gets the distinct
//! [`DbError::CommitNotDurable`] outcome, not a rejected update.

use fieldrep_core::{Database, DbConfig, DbError};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::wal::fault::FaultWal;
use fieldrep_storage::{MemDisk, MemWalStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn cfg() -> DbConfig {
    DbConfig {
        // Big enough that nothing evicts: the fault tests below need
        // the WAL untouched until the first commit record.
        pool_pages: 256,
        inline_link_threshold: 4,
    }
}

fn mem_db_with_wal(store: Box<dyn fieldrep_storage::WalStore>) -> Database {
    let mut db =
        Database::with_disk_and_wal(Box::new(MemDisk::new()), store, cfg()).expect("fresh db");
    db.define_type(TypeDef::new(
        "EMP",
        vec![("name", FieldType::Str), ("salary", FieldType::Int)],
    ))
    .unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db
}

#[test]
fn insert_blocks_while_the_apply_section_is_held() {
    let db = Arc::new(mem_db_with_wal(Box::new(MemWalStore::new())));
    let wal = db.sm().wal().expect("wal attached").clone();

    let guard = wal.apply_lock();
    let done = Arc::new(AtomicBool::new(false));
    let t = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let oid = db
                .insert("Emp1", vec![Value::Str("blocked".into()), Value::Int(1)])
                .expect("insert succeeds once the section is free");
            done.store(true, Ordering::SeqCst);
            oid
        })
    };
    // The insert must be parked on the apply section, not finished.
    thread::sleep(Duration::from_millis(100));
    assert!(
        !done.load(Ordering::SeqCst),
        "insert ran while another thread held the WAL apply section"
    );
    drop(guard);
    let oid = t.join().expect("insert thread");
    assert!(done.load(Ordering::SeqCst));
    assert_eq!(
        db.get_field(oid, "name").unwrap(),
        Value::Str("blocked".into())
    );
}

#[test]
fn failed_commit_logging_reports_commit_not_durable() {
    // Every WAL byte fails: the workload below must therefore keep the
    // log untouched until the first `update_txn` commit record, whose
    // append then dies.
    let db = mem_db_with_wal(Box::new(FaultWal::new(MemWalStore::new()).cut_after(0)));
    let oid = db
        .insert("Emp1", vec![Value::Str("alice".into()), Value::Int(10)])
        .expect("inserts don't log (no evictions, no commits)");

    let err = db
        .update_txn(oid, &[("salary", Value::Int(20))])
        .expect_err("commit append hits the armed fault");
    assert!(
        matches!(err, DbError::CommitNotDurable(_)),
        "expected CommitNotDurable, got {err:?}"
    );
    // The update *was* applied: only durability was lost.
    assert_eq!(db.get_field(oid, "salary").unwrap(), Value::Int(20));
}
