//! Seeded multi-threaded hostile stress: 8 threads hammer one database
//! with snapshot path reads, terminal updates, and reference re-points
//! across all three replication strategies at once (in-place, separate,
//! collapsed). The acceptance invariant is the paper's consistency
//! contract under concurrency: every committed read observes replica
//! values equal to their source field — no torn ripples — and the run
//! finishes with zero errors (a deadlock would surface as
//! `DbError::LockTimeout` from the watchdog).
//!
//! The seed is fixed for reproducibility; override with
//! `FIELDREP_STRESS_SEED=<n>` to explore other schedules.

mod common;

use common::check_consistency;
use fieldrep_catalog::{PathId, Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::Oid;
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 300;
const DEFAULT_SEED: u64 = 0xF1E1D;

fn seed() -> u64 {
    std::env::var("FIELDREP_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

struct World {
    db: Database,
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
    emps: Vec<Oid>,
    paths: Vec<PathId>,
}

/// Figure-1 schema (ORG ← DEPT ← EMP) with one path per strategy:
/// `Emp1.dept.name` in-place, `Emp1.dept.budget` separate, and
/// `Emp1.dept.org.name` collapsed (§4.3.3).
fn build_world() -> World {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 256,
        inline_link_threshold: 4,
    });
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    let orgs: Vec<Oid> = (0..4)
        .map(|i| {
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(1000 + i)],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..8)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Int(100 * i),
                    Value::Ref(orgs[(i as usize) % orgs.len()]),
                ],
            )
            .unwrap()
        })
        .collect();
    let emps: Vec<Oid> = (0..64)
        .map(|i| {
            db.insert(
                "Emp1",
                vec![
                    Value::Str(format!("emp{i}")),
                    Value::Int(i),
                    Value::Ref(depts[(i as usize) % depts.len()]),
                ],
            )
            .unwrap()
        })
        .collect();

    let p_inplace = db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    let p_separate = db
        .replicate("Emp1.dept.budget", Strategy::Separate)
        .unwrap();
    let p_collapsed = db
        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .unwrap();
    World {
        db,
        orgs,
        depts,
        emps,
        paths: vec![p_inplace, p_separate, p_collapsed],
    }
}

/// One worker's hostile mix: ~50% snapshot consistency checks, ~20%
/// terminal field updates, ~15% `emp.dept` re-points, ~15% `dept.org`
/// re-points (the collapsed path's intermediate hop).
fn worker(w: &World, thread: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(thread as u64));
    for op in 0..OPS_PER_THREAD {
        let roll = rng.gen_range(0..100u32);
        let step = |what: &str, r: fieldrep_core::Result<()>| {
            r.map_err(|e| format!("thread {thread} op {op} ({what}): {e}"))
        };
        if roll < 50 {
            let e = w.emps[rng.gen_range(0..w.emps.len())];
            let p = w.paths[rng.gen_range(0..w.paths.len())];
            let (visible, truth) =
                w.db.snapshot_path_check(e, p)
                    .map_err(|err| format!("thread {thread} op {op} (read): {err}"))?;
            if visible != truth {
                return Err(format!(
                    "thread {thread} op {op}: torn ripple on {e:?} path {p:?}: \
                     replica {visible:?} != source {truth:?}"
                ));
            }
        } else if roll < 70 {
            match rng.gen_range(0..3u32) {
                0 => {
                    let d = w.depts[rng.gen_range(0..w.depts.len())];
                    let v = Value::Str(format!("dept-t{thread}-{op}"));
                    step("dept.name", w.db.update_txn(d, &[("name", v)]))?;
                }
                1 => {
                    let d = w.depts[rng.gen_range(0..w.depts.len())];
                    let v = Value::Int(rng.gen_range(0..1_000_000));
                    step("dept.budget", w.db.update_txn(d, &[("budget", v)]))?;
                }
                _ => {
                    let o = w.orgs[rng.gen_range(0..w.orgs.len())];
                    let v = Value::Str(format!("org-t{thread}-{op}"));
                    step("org.name", w.db.update_txn(o, &[("name", v)]))?;
                }
            }
        } else if roll < 85 {
            let e = w.emps[rng.gen_range(0..w.emps.len())];
            let d = w.depts[rng.gen_range(0..w.depts.len())];
            step(
                "emp.dept re-point",
                w.db.update_txn(e, &[("dept", Value::Ref(d))]),
            )?;
        } else {
            let d = w.depts[rng.gen_range(0..w.depts.len())];
            let o = w.orgs[rng.gen_range(0..w.orgs.len())];
            step(
                "dept.org re-point",
                w.db.update_txn(d, &[("org", Value::Ref(o))]),
            )?;
        }
    }
    Ok(())
}

#[test]
fn eight_thread_hostile_mix_has_no_torn_ripples_and_no_deadlocks() {
    let mut w = build_world();
    let seed = seed();
    let errors: Vec<String> = std::thread::scope(|s| {
        let w = &w;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| s.spawn(move || worker(w, t, seed)))
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panicked").err())
            .collect()
    });
    assert!(errors.is_empty(), "seed {seed}: {errors:#?}");

    // Quiesced finale: every emp × every path still agrees with its
    // source, and the whole-database structural invariants hold.
    for &e in &w.emps {
        for &p in &w.paths {
            let (visible, truth) = w.db.snapshot_path_check(e, p).unwrap();
            assert_eq!(visible, truth, "seed {seed}: emp {e:?} path {p:?}");
            assert!(visible.is_some(), "seed {seed}: broken chain on {e:?}");
        }
    }
    check_consistency(&mut w.db);

    // The run was genuinely concurrent and conflict-laden, and nothing
    // timed out (the watchdog would have surfaced as an error above).
    let stats = w.db.txn().stats();
    assert_eq!(stats.active, 0);
    // `commit_epoch` counts applied write transactions (explicit
    // begin/commit pairs feed `committed`, which this test doesn't use).
    assert!(
        stats.commit_epoch >= (THREADS * OPS_PER_THREAD / 4) as u64,
        "{stats:?}"
    );
}

/// Same engine, single thread, fixed seed: a cheap smoke for CI scripts
/// (`scripts/check.sh`) that still crosses every strategy's footprint
/// code path.
#[test]
fn single_thread_mix_smoke() {
    let w = build_world();
    worker(&w, 0, DEFAULT_SEED).unwrap();
    let stats = w.db.txn().stats();
    assert_eq!(stats.conflicts, 0, "no conflicts possible single-threaded");
}
